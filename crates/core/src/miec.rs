//! The paper's heuristic: Minimum Incremental Energy Cost (MIEC).

use crate::{AllocError, AllocResult, Allocator};
use esvm_obs::{Event, EventSink, FieldValue, MetricsRegistry, NoopSink};
use esvm_par::Parallelism;
use esvm_simcore::{AllocationProblem, Assignment, ServerId, ServerLedger};
use rand::RngCore;
use std::sync::{Mutex, RwLock};

/// The heuristic of Section III.
///
/// VMs are allocated in increasing start-time order. For each VM `v_j`:
///
/// 1. build the candidate set `S_j` of servers with sufficient spare CPU
///    **and** memory throughout `[t^s_j, t^e_j]`;
/// 2. for every candidate evaluate the server's energy cost (Eq. 17,
///    including the initial switch-on `α` — see `esvm-simcore::energy`)
///    supposing `v_j` were allocated on it;
/// 3. place `v_j` on the candidate with the minimum **incremental** cost
///    (ties broken by lowest server id, for determinism).
///
/// The paper argues the heuristic saves energy because it (a) prefers
/// energy-efficient servers (small `P¹` and `P_idle`), (b) consolidates
/// VMs into existing busy segments, raising utilization, and (c) prefers
/// low-transition-cost servers when it must wake a new one.
///
/// [`Miec::ignoring_transition_costs`] is an ablation variant that scores
/// candidates as if every `α_i` were zero (placement quality without
/// transition awareness); the resulting assignment is still *charged*
/// real transition costs when audited.
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, Miec};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Two servers; the second is far more energy-efficient.
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(200.0, 400.0), 100.0)
///     .server(Resources::new(8.0, 16.0), PowerModel::new(50.0, 100.0), 25.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .build()?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = Miec::new().allocate(&problem, &mut rng)?;
/// assert_eq!(a.server_of(0.into()), Some(1.into())); // efficient server
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Miec {
    ignore_transition_costs: bool,
    assumed_duration: Option<u32>,
    reference: bool,
    unpruned: bool,
    par: Parallelism,
}

impl Miec {
    /// The standard heuristic, scoring candidates with the full cost
    /// model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reference implementation used as the equivalence oracle in tests
    /// and benchmarks: scans every server (no spec-class pruning) and
    /// scores candidates with the clone-and-rescan
    /// `ServerLedger::reference_incremental_cost` — the original
    /// semantics, preserved bit for bit. Produces the same placements as
    /// [`Miec::new`] except on exact-tie decisions, where the clone
    /// path's difference-of-sums arithmetic breaks the tie by rounding
    /// noise rather than by server id (the delta path computes those ties
    /// exactly and falls back to the documented lowest-id rule).
    pub fn reference() -> Self {
        Self::new().with_reference_scoring()
    }

    /// Switches any configuration (standard, ablation, assumed-duration)
    /// to the unpruned clone-and-rescan scan of [`Miec::reference`],
    /// keeping its other knobs. Oracle for equivalence tests.
    pub fn with_reference_scoring(mut self) -> Self {
        self.reference = true;
        self.unpruned = true;
        self
    }

    /// Disables the spec-class candidate pruning while keeping the
    /// delta-based scoring. Pruning is exactly placement-preserving —
    /// asleep servers of one spec class produce bit-identical scores —
    /// and this variant lets tests and benchmarks assert that in
    /// isolation from the scoring arithmetic.
    pub fn without_pruning(mut self) -> Self {
        self.unpruned = true;
        self
    }

    /// Ablation variant: candidate scoring pretends `α_i = 0` (transition
    /// costs are still charged by the audit). Quantifies how much of the
    /// saving comes from transition-cost awareness.
    pub fn ignoring_transition_costs() -> Self {
        Self {
            ignore_transition_costs: true,
            ..Self::default()
        }
    }

    /// Ablation variant: the paper assumes users declare each VM's
    /// duration at request time (Section I). This variant scores every
    /// candidate as if the VM would run for `units` time units (e.g. the
    /// fleet-wide mean), modelling a cloud where durations are unknown
    /// at arrival; commitment and capacity checks still use the true
    /// interval. Quantifies the value of duration knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn with_assumed_duration(units: u32) -> Self {
        assert!(units > 0, "assumed duration must be positive");
        Self {
            assumed_duration: Some(units),
            ..Self::default()
        }
    }

    /// Scores candidate shards on `par.threads()` threads. Placements,
    /// costs, and energy breakdowns are **bit-identical** for every
    /// thread count: candidate scoring is read-only over replicated
    /// ledgers, and the argmin reduction merges chunk minima in
    /// ascending server-id order with the same strict `<` (Eq. 7
    /// lowest-id tie-breaking) as the sequential scan.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The configured thread-count policy.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The interval used for *scoring* `vm` (the true one, unless a
    /// duration assumption is configured).
    fn scoring_vm(&self, vm: &esvm_simcore::Vm) -> esvm_simcore::Vm {
        match self.assumed_duration {
            None => *vm,
            Some(units) => esvm_simcore::Vm::new(
                vm.id(),
                vm.demand(),
                esvm_simcore::Interval::with_len(vm.start(), units),
            ),
        }
    }
}

impl Miec {
    /// The shared placement loop. In admission mode an unplaceable VM is
    /// rejected and the run continues; otherwise it aborts.
    ///
    /// Generic over the event sink: with the default [`NoopSink`]
    /// (`S::ENABLED == false`) every instrumentation block is a
    /// compile-time-dead branch and the monomorphised loop is the
    /// uninstrumented code.
    fn run<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        admit: bool,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        if self.par.threads() > 1 {
            return self.run_parallel(problem, admit, sink, metrics);
        }
        let mut assignment = Assignment::new(problem);
        let mut rejected = Vec::new();
        // Hot-loop tallies stay in registers; flushed to `metrics` once
        // after the placement loop.
        let mut candidates_total = 0u64;
        let mut pruned_total = 0u64;
        let mut unfit_total = 0u64;
        let mut fp_ties_total = 0u64;

        // Shadow ledgers with α = 0 for the ablation variant's scoring.
        let mut shadow: Option<Vec<ServerLedger>> = self.ignore_transition_costs.then(|| {
            problem
                .servers()
                .iter()
                .map(|s| {
                    ServerLedger::new(esvm_simcore::ServerSpec::new(
                        s.id(),
                        s.capacity(),
                        *s.power(),
                        0.0,
                    ))
                })
                .collect()
        });

        // Spec classes for candidate pruning (see `crate::classes`): per
        // VM only the first (lowest-id) asleep member of each class is
        // scored. The strict `<` below would pick exactly that member
        // anyway, so placements are unchanged. Awake servers are always
        // scored.
        let classes = crate::classes::spec_classes(problem.servers());
        let class_of = &classes.class_of;
        // `class_scored[c] == step` marks class `c` as already represented
        // by an asleep server for the current VM (stamps avoid a per-VM
        // clear).
        let mut class_scored: Vec<usize> = vec![usize::MAX; classes.count];

        for (step, j) in problem.vms_by_start_time().into_iter().enumerate() {
            let vm = &problem.vms()[j];
            let scoring = self.scoring_vm(vm);
            let mut best: Option<(f64, ServerId)> = None;
            let mut candidates = 0u64;
            let mut pruned = 0u64;
            for i in 0..problem.server_count() {
                let sid = ServerId(i as u32);
                let real = assignment.ledger(sid);
                if !self.unpruned && real.hosted_count() == 0 {
                    let class = class_of[i];
                    if class_scored[class] == step {
                        // A lower-id asleep server of the same spec class
                        // already stood in for this one.
                        if S::ENABLED {
                            pruned += 1;
                        }
                        continue;
                    }
                    class_scored[class] = step;
                }
                if !real.fits(vm) {
                    if S::ENABLED {
                        unfit_total += 1;
                    }
                    continue;
                }
                let delta = match &shadow {
                    Some(ledgers) if self.reference => {
                        ledgers[i].reference_incremental_cost(&scoring)
                    }
                    Some(ledgers) => ledgers[i].incremental_cost(&scoring),
                    None if self.reference => real.reference_incremental_cost(&scoring),
                    None => real.incremental_cost(&scoring),
                };
                if S::ENABLED {
                    candidates += 1;
                    // An exact score tie: the strict `<` below resolves
                    // it to the lowest server id — the decisions the
                    // equivalence benches certify as FP ties.
                    if best.is_some_and(|(cost, _)| delta == cost) {
                        fp_ties_total += 1;
                    }
                }
                // Strict `<` keeps the lowest server id on ties.
                if best.is_none_or(|(cost, _)| delta < cost) {
                    best = Some((delta, sid));
                }
            }
            if S::ENABLED {
                candidates_total += candidates;
                pruned_total += pruned;
            }
            match best {
                Some((delta, sid)) => {
                    assignment.place(vm.id(), sid)?;
                    if let Some(ledgers) = shadow.as_mut() {
                        ledgers[sid.index()].host(vm);
                    }
                    if S::ENABLED {
                        metrics.observe("miec.placement_delta", delta);
                        sink.emit(&Event {
                            name: "miec.place",
                            fields: &[
                                ("vm", FieldValue::U64(vm.id().index() as u64)),
                                ("server", FieldValue::U64(sid.index() as u64)),
                                ("delta", FieldValue::F64(delta)),
                                ("candidates", FieldValue::U64(candidates)),
                                ("pruned", FieldValue::U64(pruned)),
                            ],
                        });
                    }
                }
                None if admit => {
                    if S::ENABLED {
                        sink.emit(&Event {
                            name: "miec.reject",
                            fields: &[("vm", FieldValue::U64(vm.id().index() as u64))],
                        });
                    }
                    rejected.push(vm.id());
                }
                None => return Err(AllocError::NoFeasibleServer(vm.id())),
            }
        }
        if S::ENABLED {
            let placed = problem.vm_count() as u64 - rejected.len() as u64;
            metrics.add("miec.vms_placed", placed);
            metrics.add("miec.vms_rejected", rejected.len() as u64);
            metrics.add("miec.candidates_considered", candidates_total);
            metrics.add("miec.spec_class_pruned", pruned_total);
            metrics.add("miec.unfit_skipped", unfit_total);
            metrics.add("miec.fp_ties", fp_ties_total);
        }
        Ok((assignment, rejected))
    }

    /// The parallel twin of [`Miec::run`]: per VM, the candidate list is
    /// built sequentially on the conductor (pruning stamps are order-
    /// sensitive), then `incremental_cost` shards are scored on the pool
    /// and reduced to the sequential argmin.
    ///
    /// Determinism contract (see DESIGN.md "Concurrency model"): worker
    /// chunks are **read-only** over ledgers replicated from the
    /// assignment (hosted in the same VM order, hence bit-identical
    /// float state), each chunk folds its own strict-`<` minimum over
    /// ascending server ids, and the conductor merges chunk minima in
    /// ascending chunk order with strict `<` — so the winner, including
    /// Eq. 7 lowest-id tie-breaking, is bit-for-bit the sequential
    /// pick. The assignment is then rebuilt by replaying the placements
    /// in start-time order, the exact construction the sequential loop
    /// performs.
    ///
    /// Counter semantics: `vms_placed/rejected`, `candidates_considered`,
    /// `spec_class_pruned`, and `unfit_skipped` are identical to the
    /// sequential run. `fp_ties` counts ties against chunk-local minima
    /// (merged in order) rather than the sequential running best, so it
    /// can undercount ties against bests that a later candidate
    /// displaces; it is diagnostic, not part of the equality contract.
    fn run_parallel<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        admit: bool,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        struct Job {
            /// Replica of the assignment's ledgers (same host order →
            /// bit-identical state); `fits` and real-cost scoring.
            real: Vec<ServerLedger>,
            /// α = 0 replica for the ablation variant's scoring.
            shadow: Option<Vec<ServerLedger>>,
            /// Server indices surviving spec-class pruning for the
            /// current VM, ascending.
            candidates: Vec<u32>,
            /// `(true vm, scoring vm)` for the current generation.
            vm: Option<(esvm_simcore::Vm, esvm_simcore::Vm)>,
        }
        #[derive(Clone, Copy, Default)]
        struct ChunkResult {
            /// Chunk-local strict-`<` minimum `(delta, server id)`.
            best: Option<(f64, u32)>,
            /// Candidates in this chunk tying the chunk-local best.
            ties_at_best: u64,
            unfit: u64,
            scored: u64,
        }

        let job = RwLock::new(Job {
            real: problem.servers().iter().map(|s| ServerLedger::new(*s)).collect(),
            shadow: self.ignore_transition_costs.then(|| {
                problem
                    .servers()
                    .iter()
                    .map(|s| {
                        ServerLedger::new(esvm_simcore::ServerSpec::new(
                            s.id(),
                            s.capacity(),
                            *s.power(),
                            0.0,
                        ))
                    })
                    .collect()
            }),
            candidates: Vec::with_capacity(problem.server_count()),
            vm: None,
        });
        let slots: Vec<Mutex<ChunkResult>> = (0..self.par.max_chunks(problem.server_count()))
            .map(|_| Mutex::new(ChunkResult::default()))
            .collect();
        let reference = self.reference;
        let instrumented = S::ENABLED;

        let worker = |chunk: usize, range: std::ops::Range<usize>| {
            let job = job.read().expect("miec job lock poisoned");
            let (vm, scoring) = job.vm.expect("dispatch without a job VM");
            let mut out = ChunkResult::default();
            for k in range {
                let i = job.candidates[k] as usize;
                if !job.real[i].fits(&vm) {
                    out.unfit += 1;
                    continue;
                }
                let delta = match (&job.shadow, reference) {
                    (Some(ledgers), true) => ledgers[i].reference_incremental_cost(&scoring),
                    (Some(ledgers), false) => ledgers[i].incremental_cost(&scoring),
                    (None, true) => job.real[i].reference_incremental_cost(&scoring),
                    (None, false) => job.real[i].incremental_cost(&scoring),
                };
                if instrumented {
                    out.scored += 1;
                    match out.best {
                        Some((cost, _)) if delta == cost => out.ties_at_best += 1,
                        Some((cost, _)) if delta < cost => out.ties_at_best = 0,
                        _ => {}
                    }
                }
                // Strict `<`: within a chunk the lowest server id wins
                // ties, exactly like the sequential left-to-right scan.
                if out.best.is_none_or(|(cost, _)| delta < cost) {
                    out.best = Some((delta, job.candidates[k]));
                }
            }
            *slots[chunk].lock().expect("miec chunk slot poisoned") = out;
        };

        let classes = crate::classes::spec_classes(problem.servers());
        let class_of = &classes.class_of;
        let ordered_vms = problem.vms_by_start_time();

        let run = esvm_par::scope(self.par, worker, |pool| -> AllocResult<_> {
            let mut placement: Vec<Option<ServerId>> = vec![None; problem.vm_count()];
            let mut rejected = Vec::new();
            let mut candidates_total = 0u64;
            let mut pruned_total = 0u64;
            let mut unfit_total = 0u64;
            let mut fp_ties_total = 0u64;
            let mut class_scored: Vec<usize> = vec![usize::MAX; classes.count];

            for (step, &j) in ordered_vms.iter().enumerate() {
                let vm = &problem.vms()[j];
                let n_candidates;
                let mut vm_pruned = 0u64;
                {
                    // Safe to mutate: `dispatch` quiesced all workers
                    // before returning, so no reader holds the lock.
                    let mut job = job.write().expect("miec job lock poisoned");
                    let job = &mut *job;
                    job.candidates.clear();
                    for i in 0..problem.server_count() {
                        if !self.unpruned && job.real[i].hosted_count() == 0 {
                            let class = class_of[i];
                            if class_scored[class] == step {
                                if S::ENABLED {
                                    vm_pruned += 1;
                                }
                                continue;
                            }
                            class_scored[class] = step;
                        }
                        job.candidates.push(i as u32);
                    }
                    job.vm = Some((*vm, self.scoring_vm(vm)));
                    n_candidates = job.candidates.len();
                    if S::ENABLED {
                        pruned_total += vm_pruned;
                    }
                }
                pool.dispatch(n_candidates);
                // Merge chunk minima in ascending chunk order — chunk c's
                // server ids all precede chunk c+1's, so strict `<` here
                // reproduces the sequential fold, ties and all.
                let (_, n_chunks) = self.par.chunking(n_candidates);
                let mut best: Option<(f64, u32)> = None;
                let mut candidates = 0u64;
                for slot in &slots[..n_chunks] {
                    let out = *slot.lock().expect("miec chunk slot poisoned");
                    if S::ENABLED {
                        candidates += out.scored;
                        unfit_total += out.unfit;
                        if let (Some((delta, _)), Some((cost, _))) = (out.best, best) {
                            if delta == cost {
                                // The chunk best itself ties the global
                                // best, plus its in-chunk ties.
                                fp_ties_total += out.ties_at_best + 1;
                            } else if delta < cost {
                                fp_ties_total += out.ties_at_best;
                            }
                        } else if let (Some(_), None) = (out.best, best) {
                            fp_ties_total += out.ties_at_best;
                        }
                    }
                    if let Some((delta, sid)) = out.best {
                        if best.is_none_or(|(cost, _)| delta < cost) {
                            best = Some((delta, sid));
                        }
                    }
                }
                if S::ENABLED {
                    candidates_total += candidates;
                }
                match best {
                    Some((delta, sid)) => {
                        let mut job = job.write().expect("miec job lock poisoned");
                        let job = &mut *job;
                        job.real[sid as usize].host(vm);
                        if let Some(ledgers) = job.shadow.as_mut() {
                            ledgers[sid as usize].host(vm);
                        }
                        placement[vm.id().index()] = Some(ServerId(sid));
                        if S::ENABLED {
                            metrics.observe("miec.placement_delta", delta);
                            sink.emit(&Event {
                                name: "miec.place",
                                fields: &[
                                    ("vm", FieldValue::U64(vm.id().index() as u64)),
                                    ("server", FieldValue::U64(u64::from(sid))),
                                    ("delta", FieldValue::F64(delta)),
                                    ("candidates", FieldValue::U64(candidates)),
                                    ("pruned", FieldValue::U64(vm_pruned)),
                                ],
                            });
                        }
                    }
                    None if admit => {
                        if S::ENABLED {
                            sink.emit(&Event {
                                name: "miec.reject",
                                fields: &[("vm", FieldValue::U64(vm.id().index() as u64))],
                            });
                        }
                        rejected.push(vm.id());
                    }
                    None => return Err(AllocError::NoFeasibleServer(vm.id())),
                }
            }
            if S::ENABLED {
                let placed = problem.vm_count() as u64 - rejected.len() as u64;
                metrics.add("miec.vms_placed", placed);
                metrics.add("miec.vms_rejected", rejected.len() as u64);
                metrics.add("miec.candidates_considered", candidates_total);
                metrics.add("miec.spec_class_pruned", pruned_total);
                metrics.add("miec.unfit_skipped", unfit_total);
                metrics.add("miec.fp_ties", fp_ties_total);
                let stats = pool.stats();
                metrics.add("miec.par.generations", stats.generations);
                metrics.add("miec.par.chunks", stats.chunks);
                metrics.add("miec.par.steals", stats.steals);
                metrics.set_gauge("miec.par.imbalance", stats.imbalance);
            }
            Ok((placement, rejected))
        });
        let (placement, rejected) = run?;

        // Rebuild the assignment by replaying placements in start-time
        // order — the exact sequence of `place` calls the sequential
        // loop performs, so the ledgers' float state is bit-identical.
        let mut assignment = Assignment::new(problem);
        for &j in &ordered_vms {
            let vm = &problem.vms()[j];
            if let Some(sid) = placement[vm.id().index()] {
                assignment.place(vm.id(), sid)?;
            }
        }
        Ok((assignment, rejected))
    }

    /// Observed variant of [`Allocator::allocate`]: identical placement
    /// decisions, with a `miec.place` event per VM emitted to `sink` and
    /// the scan tallies (candidates considered, spec-class pruned, exact
    /// FP ties, unfit skips) accumulated into `metrics`.
    ///
    /// # Errors
    ///
    /// Same as [`Allocator::allocate`].
    pub fn allocate_observed<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, sink, metrics).map(|(a, _)| a)
    }

    /// Allocation with admission control: unplaceable VMs are rejected
    /// instead of aborting the run. Returns the (partial) assignment and
    /// the rejected VM ids. Models an overloaded data center that turns
    /// requests away — the regime the paper's evaluation never enters.
    ///
    /// # Errors
    ///
    /// Only internal placement errors (never
    /// [`AllocError::NoFeasibleServer`]).
    pub fn allocate_with_admission<'p>(
        &self,
        problem: &'p AllocationProblem,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        self.run(problem, true, &mut NoopSink, &MetricsRegistry::new())
    }
}

impl Allocator for Miec {
    fn name(&self) -> &'static str {
        if self.reference {
            "miec-reference"
        } else if self.unpruned {
            "miec-unpruned"
        } else if self.ignore_transition_costs {
            "miec-noalpha"
        } else if self.assumed_duration.is_some() {
            "miec-blind"
        } else {
            "miec"
        }
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, false, &mut NoopSink, &MetricsRegistry::new())
            .map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources, VmId};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn consolidates_overlapping_vms_on_one_server() {
        // Two identical servers; two overlapping small VMs. Sharing one
        // server avoids a second P_idle + α.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)));
    }

    #[test]
    fn prefers_low_transition_cost_when_all_asleep() {
        // Identical servers except transition cost; Section III's example.
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 500.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
    }

    #[test]
    fn prefers_small_servers_under_light_load() {
        // A small cheap server and a big hungry one; the small server is
        // adequate, so MIEC should consolidate there.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(120.0, 136.0),
                PowerModel::new(260.0, 560.0),
                560.0,
            )
            .server(Resources::new(16.0, 32.0), PowerModel::new(140.0, 300.0), 300.0)
            .vm(Resources::new(1.0, 1.7), Interval::new(1, 5))
            .vm(Resources::new(1.0, 1.7), Interval::new(2, 6))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(a.server_of(VmId(1)), Some(ServerId(1)));
    }

    #[test]
    fn respects_capacity_and_spills_over() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(80.0, 160.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        // They cannot share: 6 CPU > 4.
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn errors_when_no_server_fits() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .build()
            .unwrap();
        let err = Miec::new().allocate(&p, &mut rng()).unwrap_err();
        assert_eq!(err, AllocError::NoFeasibleServer(VmId(1)));
    }

    #[test]
    fn is_deterministic() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 8))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 20))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        let b = Miec::new()
            .allocate(&p, &mut StdRng::seed_from_u64(999))
            .unwrap();
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn tie_break_is_lowest_server_id() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(0)));
    }

    #[test]
    fn ablation_variant_ignores_alpha_in_scoring() {
        // Server 0: expensive transition, slightly cheaper idle power.
        // Standard MIEC avoids the huge α; the ablation variant sees only
        // idle/run power and picks server 0.
        let p = ProblemBuilder::new()
            .server(
                Resources::new(8.0, 16.0),
                PowerModel::new(99.0, 200.0),
                10_000.0,
            )
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .build()
            .unwrap();
        let smart = Miec::new().allocate(&p, &mut rng()).unwrap();
        let blind = Miec::ignoring_transition_costs()
            .allocate(&p, &mut rng())
            .unwrap();
        assert_eq!(smart.server_of(VmId(0)), Some(ServerId(1)));
        assert_eq!(blind.server_of(VmId(0)), Some(ServerId(0)));
        // The audit still charges the real α, so the ablation costs more.
        assert!(blind.total_cost() > smart.total_cost());
        assert_eq!(Miec::new().name(), "miec");
        assert_eq!(Miec::ignoring_transition_costs().name(), "miec-noalpha");
    }

    #[test]
    fn blind_duration_variant_still_produces_valid_assignments() {
        let p = ProblemBuilder::new()
            .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(90.0, 210.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 30))
            .vm(Resources::new(1.0, 2.0), Interval::new(4, 5))
            .vm(Resources::new(2.0, 2.0), Interval::new(11, 40))
            .build()
            .unwrap();
        let blind = Miec::with_assumed_duration(5)
            .allocate(&p, &mut rng())
            .unwrap();
        assert!(blind.audit().is_ok());
        assert_eq!(Miec::with_assumed_duration(5).name(), "miec-blind");
        // Knowing durations can only help (statistically; on this tiny
        // instance we just assert both are valid and comparable).
        let informed = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(informed.total_cost() <= blind.total_cost() + 1e-9);
    }

    #[test]
    fn admission_mode_places_everything_else() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 15))
            .vm(Resources::new(3.0, 6.0), Interval::new(12, 20))
            .build()
            .unwrap();
        let (a, rejected) = Miec::new().allocate_with_admission(&p).unwrap();
        // VM 1 overlaps both others; exactly it is rejected.
        assert_eq!(rejected, vec![VmId(1)]);
        assert!(a.server_of(VmId(0)).is_some());
        assert!(a.server_of(VmId(2)).is_some());
        // The partial assignment still audits against capacity.
        assert!(a.total_cost() > 0.0);
    }

    #[test]
    fn pruned_scan_matches_reference_on_homogeneous_fleet() {
        // Four identical servers: pruning scores only one while all are
        // asleep, and the lowest-id tie-break must match the full scan.
        let mut b = ProblemBuilder::new();
        for _ in 0..4 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .vm(Resources::new(6.0, 12.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(5, 14))
            .vm(Resources::new(6.0, 12.0), Interval::new(8, 20))
            .vm(Resources::new(2.0, 4.0), Interval::new(30, 35))
            .build()
            .unwrap();
        let fast = Miec::new().allocate(&p, &mut rng()).unwrap();
        let slow = Miec::reference().allocate(&p, &mut rng()).unwrap();
        assert_eq!(fast.placement(), slow.placement());
        assert_eq!(fast.server_of(VmId(0)), Some(ServerId(0)));
        assert_eq!(Miec::reference().name(), "miec-reference");
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports_scan_counts() {
        use esvm_obs::MemorySink;
        let mut b = ProblemBuilder::new();
        for _ in 0..3 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .server(Resources::new(4.0, 8.0), PowerModel::new(60.0, 120.0), 20.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(2.0, 4.0), Interval::new(20, 25))
            .build()
            .unwrap();
        let plain = Miec::new().allocate(&p, &mut rng()).unwrap();
        let mut sink = MemorySink::new();
        let metrics = esvm_obs::MetricsRegistry::new();
        let observed = Miec::new().allocate_observed(&p, &mut sink, &metrics).unwrap();
        assert_eq!(plain.placement(), observed.placement());
        assert_eq!(metrics.counter("miec.vms_placed"), 3);
        assert_eq!(metrics.counter("miec.vms_rejected"), 0);
        // 3 VMs over ≤ 4 servers, with the three identical servers
        // pruned down to one representative while asleep.
        assert!(metrics.counter("miec.candidates_considered") >= 3);
        assert!(metrics.counter("miec.spec_class_pruned") >= 2);
        assert_eq!(metrics.histogram("miec.placement_delta").unwrap().count, 3);
        // One miec.place event per VM, in placement order.
        assert_eq!(sink.lines.len(), 3);
        assert!(sink.lines.iter().all(|l| l.contains("\"event\":\"miec.place\"")));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        use esvm_par::Parallelism;
        let mut b = ProblemBuilder::new();
        for i in 0..6 {
            b = b.server(
                Resources::new(8.0, 16.0),
                PowerModel::new(100.0 + f64::from(i), 200.0),
                50.0,
            );
        }
        let p = b
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(6.0, 12.0), Interval::new(2, 9))
            .vm(Resources::new(3.0, 4.0), Interval::new(4, 15))
            .vm(Resources::new(2.0, 2.0), Interval::new(20, 25))
            .vm(Resources::new(5.0, 8.0), Interval::new(5, 12))
            .build()
            .unwrap();
        for make in [
            Miec::new,
            Miec::reference,
            Miec::ignoring_transition_costs,
            || Miec::with_assumed_duration(3),
            || Miec::new().without_pruning(),
        ] as [fn() -> Miec; 5]
        {
            let sequential = make().allocate(&p, &mut rng()).unwrap();
            for threads in [2usize, 4, 8] {
                let parallel = make()
                    .with_parallelism(Parallelism::new(threads))
                    .allocate(&p, &mut rng())
                    .unwrap();
                assert_eq!(sequential.placement(), parallel.placement());
                assert_eq!(
                    sequential.total_cost().to_bits(),
                    parallel.total_cost().to_bits(),
                    "{} threads={threads}",
                    make().name()
                );
            }
        }
    }

    #[test]
    fn parallel_observed_counters_match_sequential() {
        use esvm_par::Parallelism;
        let mut b = ProblemBuilder::new();
        for _ in 0..4 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        let p = b
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 12))
            .vm(Resources::new(2.0, 4.0), Interval::new(20, 25))
            .build()
            .unwrap();
        let seq_metrics = esvm_obs::MetricsRegistry::new();
        let par_metrics = esvm_obs::MetricsRegistry::new();
        let a = Miec::new()
            .allocate_observed(&p, &mut esvm_obs::MemorySink::new(), &seq_metrics)
            .unwrap();
        let b = Miec::new()
            .with_parallelism(Parallelism::new(4))
            .allocate_observed(&p, &mut esvm_obs::MemorySink::new(), &par_metrics)
            .unwrap();
        assert_eq!(a.placement(), b.placement());
        for name in [
            "miec.vms_placed",
            "miec.vms_rejected",
            "miec.candidates_considered",
            "miec.spec_class_pruned",
            "miec.unfit_skipped",
        ] {
            assert_eq!(seq_metrics.counter(name), par_metrics.counter(name), "{name}");
        }
        // Pool counters only exist on the parallel run.
        assert!(par_metrics.counter("miec.par.generations") >= 3);
        assert_eq!(seq_metrics.counter("miec.par.generations"), 0);
    }

    #[test]
    fn handles_empty_vm_list() {
        let p = ProblemBuilder::new()
            .server(Resources::new(1.0, 1.0), PowerModel::new(1.0, 2.0), 0.0)
            .build()
            .unwrap();
        let a = Miec::new().allocate(&p, &mut rng()).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.total_cost(), 0.0);
    }
}
