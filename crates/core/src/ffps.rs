//! The paper's baseline: First Fit Power Saving (FFPS).

use crate::{AllocError, AllocResult, Allocator};
use esvm_simcore::{AllocationProblem, Assignment, ServerId};
use rand::seq::SliceRandom;
use rand::RngCore;

/// The baseline of Section IV-A.
///
/// "VMs are allocated in the increasing order of their starting time, and
/// servers are randomly sorted. Each VM is allocated on the first
/// searched server which can provide sufficient resources to the VM
/// throughout its time duration."
///
/// The random server order is drawn **once per run** from the provided
/// RNG; the same switch-off policy as MIEC is applied when the resulting
/// assignment's energy is evaluated (that is what the "power saving" in
/// the name refers to — the baseline is energy-naive only in *placement*,
/// not in *operation*).
///
/// # Example
///
/// ```
/// use esvm_core::{Allocator, Ffps};
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .build()?;
/// let a = Ffps::new().allocate(&problem, &mut StdRng::seed_from_u64(1))?;
/// assert!(a.is_complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ffps {
    _private: (),
}

impl Ffps {
    /// Creates the baseline allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Ffps {
    fn run<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
        admit: bool,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        let mut order: Vec<ServerId> = (0..problem.server_count() as u32)
            .map(ServerId)
            .collect();
        order.shuffle(rng);

        let mut assignment = Assignment::new(problem);
        let mut rejected = Vec::new();
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            match order
                .iter()
                .copied()
                .find(|&sid| assignment.ledger(sid).fits(vm))
            {
                Some(sid) => assignment.place(vm.id(), sid)?,
                None if admit => rejected.push(vm.id()),
                None => return Err(AllocError::NoFeasibleServer(vm.id())),
            }
        }
        Ok((assignment, rejected))
    }

    /// First-fit with admission control: unplaceable VMs are rejected
    /// instead of aborting. See
    /// [`Miec::allocate_with_admission`](crate::Miec::allocate_with_admission).
    ///
    /// # Errors
    ///
    /// Only internal placement errors.
    pub fn allocate_with_admission<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<(Assignment<'p>, Vec<esvm_simcore::VmId>)> {
        self.run(problem, rng, true)
    }
}

impl Allocator for Ffps {
    fn name(&self) -> &'static str {
        "ffps"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        self.run(problem, rng, false).map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources, VmId};
    use rand::{rngs::StdRng, SeedableRng};

    fn many_servers() -> AllocationProblem {
        let mut b = ProblemBuilder::new();
        for _ in 0..8 {
            b = b.server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
        }
        b.vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(2.0, 4.0), Interval::new(2, 11))
            .build()
            .unwrap()
    }

    #[test]
    fn server_order_is_fixed_within_a_run() {
        // Both VMs fit on the first server in the shuffled order, so FFPS
        // must co-locate them.
        let p = many_servers();
        for seed in 0..20 {
            let a = Ffps::new()
                .allocate(&p, &mut StdRng::seed_from_u64(seed))
                .unwrap();
            assert_eq!(a.server_of(VmId(0)), a.server_of(VmId(1)), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_produce_different_orders() {
        let p = many_servers();
        let picks: std::collections::HashSet<_> = (0..32)
            .map(|seed| {
                Ffps::new()
                    .allocate(&p, &mut StdRng::seed_from_u64(seed))
                    .unwrap()
                    .server_of(VmId(0))
                    .unwrap()
            })
            .collect();
        assert!(picks.len() > 1, "shuffle appears inert: {picks:?}");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let p = many_servers();
        let a = Ffps::new()
            .allocate(&p, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let b = Ffps::new()
            .allocate(&p, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(a.placement(), b.placement());
    }

    #[test]
    fn first_fit_skips_full_servers() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 12))
            .build()
            .unwrap();
        let a = Ffps::new()
            .allocate(&p, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_ne!(a.server_of(VmId(0)), a.server_of(VmId(1)));
        assert!(a.audit().is_ok());
    }

    #[test]
    fn admission_mode_rejects_instead_of_erroring() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 12))
            .vm(Resources::new(1.0, 1.0), Interval::new(20, 22))
            .build()
            .unwrap();
        let (a, rejected) = Ffps::new()
            .allocate_with_admission(&p, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(rejected, vec![VmId(1)]);
        assert_eq!(a.server_of(VmId(0)), Some(esvm_simcore::ServerId(0)));
        assert_eq!(a.server_of(VmId(1)), None);
        assert_eq!(a.server_of(VmId(2)), Some(esvm_simcore::ServerId(0)));
    }

    #[test]
    fn errors_when_overloaded() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 10))
            .vm(Resources::new(3.0, 6.0), Interval::new(5, 12))
            .build()
            .unwrap();
        let err = Ffps::new()
            .allocate(&p, &mut StdRng::seed_from_u64(3))
            .unwrap_err();
        assert_eq!(err, AllocError::NoFeasibleServer(VmId(1)));
    }
}
