//! Name-based registry of all allocation algorithms.

use crate::{
    AllocResult, Allocator, BestFit, Ffps, FirstFit, LocalSearch, LowestIdlePower, Miec,
    OnlineGreedy, Random, Refined, RoundRobin,
};
use esvm_obs::{EventSink, MetricsRegistry, NoopTracer, Tracer};
use esvm_par::Parallelism;
use esvm_simcore::{AllocationProblem, Assignment};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Every allocation algorithm in the workspace, by name.
///
/// Used by the CLI (`esvm --algo <name>`), trace tooling and the
/// experiment harness to construct allocators from configuration.
///
/// # Example
///
/// ```
/// use esvm_core::AllocatorKind;
/// let kind: AllocatorKind = "miec".parse()?;
/// assert_eq!(kind, AllocatorKind::Miec);
/// assert_eq!(kind.build().name(), "miec");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum AllocatorKind {
    /// [`Miec`] — the paper's heuristic.
    Miec,
    /// [`Miec::ignoring_transition_costs`] — ablation.
    MiecNoAlpha,
    /// [`Miec`] refined by [`LocalSearch`] — offline strengthening.
    MiecLocalSearch,
    /// [`Miec::with_assumed_duration`] — scoring blind to true
    /// durations (assumes the paper's default mean of 5 units).
    MiecBlindDuration,
    /// [`OnlineGreedy`] — the MIEC scoring rule run online: requests in
    /// arrival order, decisions irrevocable at arrival, departed VMs
    /// freed from the live ledgers.
    OnlineGreedy,
    /// [`Ffps`] — the paper's baseline.
    Ffps,
    /// [`FirstFit`].
    FirstFit,
    /// [`BestFit`].
    BestFit,
    /// [`LowestIdlePower`].
    LowestIdlePower,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`Ffps`] refined by [`LocalSearch`] — how much of FFPS's waste
    /// an offline pass can recover.
    FfpsLocalSearch,
    /// [`Random`].
    Random,
}

impl AllocatorKind {
    /// All kinds, in presentation order.
    pub const ALL: [AllocatorKind; 12] = [
        AllocatorKind::Miec,
        AllocatorKind::MiecNoAlpha,
        AllocatorKind::MiecLocalSearch,
        AllocatorKind::MiecBlindDuration,
        AllocatorKind::OnlineGreedy,
        AllocatorKind::Ffps,
        AllocatorKind::FfpsLocalSearch,
        AllocatorKind::FirstFit,
        AllocatorKind::BestFit,
        AllocatorKind::LowestIdlePower,
        AllocatorKind::RoundRobin,
        AllocatorKind::Random,
    ];

    /// The canonical name (identical to the built allocator's
    /// [`Allocator::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AllocatorKind::Miec => "miec",
            AllocatorKind::MiecNoAlpha => "miec-noalpha",
            AllocatorKind::MiecLocalSearch => "miec-ls",
            AllocatorKind::MiecBlindDuration => "miec-blind",
            AllocatorKind::OnlineGreedy => "online-greedy",
            AllocatorKind::Ffps => "ffps",
            AllocatorKind::FfpsLocalSearch => "ffps-ls",
            AllocatorKind::FirstFit => "first-fit",
            AllocatorKind::BestFit => "best-fit",
            AllocatorKind::LowestIdlePower => "lowest-idle-power",
            AllocatorKind::RoundRobin => "round-robin",
            AllocatorKind::Random => "random",
        }
    }

    /// Constructs the allocator (sequential scoring).
    pub fn build(&self) -> Box<dyn Allocator> {
        self.build_with(Parallelism::sequential())
    }

    /// Constructs the allocator with a thread-count policy. Only the
    /// MIEC family and the local-search wrappers have parallel scoring
    /// paths; the simple baselines ignore `par`. Placements are
    /// bit-identical to [`AllocatorKind::build`] for every thread count.
    pub fn build_with(&self, par: Parallelism) -> Box<dyn Allocator> {
        match self {
            AllocatorKind::Miec => Box::new(Miec::new().with_parallelism(par)),
            AllocatorKind::MiecNoAlpha => {
                Box::new(Miec::ignoring_transition_costs().with_parallelism(par))
            }
            AllocatorKind::MiecLocalSearch => Box::new(Refined::new(
                Miec::new().with_parallelism(par),
                LocalSearch::new().with_parallelism(par),
                "miec-ls",
            )),
            AllocatorKind::MiecBlindDuration => {
                Box::new(Miec::with_assumed_duration(5).with_parallelism(par))
            }
            // The online event loop is inherently sequential (every
            // decision conditions the next), so `par` is a no-op and
            // thread-count bit-exactness is structural.
            AllocatorKind::OnlineGreedy => Box::new(OnlineGreedy::new()),
            AllocatorKind::Ffps => Box::new(Ffps::new()),
            AllocatorKind::FfpsLocalSearch => Box::new(Refined::new(
                Ffps::new(),
                LocalSearch::new().with_parallelism(par),
                "ffps-ls",
            )),
            AllocatorKind::FirstFit => Box::new(FirstFit::new()),
            AllocatorKind::BestFit => Box::new(BestFit::new()),
            AllocatorKind::LowestIdlePower => Box::new(LowestIdlePower::new()),
            AllocatorKind::RoundRobin => Box::new(RoundRobin::new()),
            AllocatorKind::Random => Box::new(Random::new()),
        }
    }

    /// Builds and runs the allocator with telemetry: instrumented kinds
    /// (the MIEC family and the local-search wrappers) record decision
    /// counters and histograms into `metrics` and stream per-decision
    /// events into `sink`; the simple baselines run uninstrumented and
    /// record nothing. Placements are identical to
    /// [`AllocatorKind::build`] + [`Allocator::allocate`] with the same
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Allocator::allocate`].
    pub fn allocate_observed<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
        sink: &mut S,
        metrics: &MetricsRegistry,
    ) -> AllocResult<Assignment<'p>> {
        self.allocate_observed_with(problem, rng, sink, metrics, Parallelism::sequential())
    }

    /// [`AllocatorKind::allocate_observed`] with a thread-count policy
    /// for the instrumented kinds' scoring loops; `*.par.*` pool
    /// counters land in `metrics` when `par` is parallel. Placements
    /// are bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Allocator::allocate`].
    pub fn allocate_observed_with<'p, S: EventSink>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
        sink: &mut S,
        metrics: &MetricsRegistry,
        par: Parallelism,
    ) -> AllocResult<Assignment<'p>> {
        self.allocate_traced_with(problem, rng, sink, metrics, par, &NoopTracer)
    }

    /// [`AllocatorKind::allocate_observed_with`] with decision
    /// provenance: the instrumented kinds additionally record
    /// hierarchical spans, per-placement explain records and per-span
    /// latency histograms into `tracer`. The simple baselines run
    /// uninstrumented (no spans, no explains). With [`NoopTracer`] this
    /// *is* [`AllocatorKind::allocate_observed_with`] — the differential
    /// tracing suite pins placements and costs bit-identical across all
    /// kinds.
    ///
    /// # Errors
    ///
    /// Same contract as [`Allocator::allocate`].
    pub fn allocate_traced_with<'p, S: EventSink, T: Tracer>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
        sink: &mut S,
        metrics: &MetricsRegistry,
        par: Parallelism,
        tracer: &T,
    ) -> AllocResult<Assignment<'p>> {
        match self {
            AllocatorKind::Miec => Miec::new()
                .with_parallelism(par)
                .allocate_traced(problem, sink, metrics, tracer),
            AllocatorKind::MiecNoAlpha => Miec::ignoring_transition_costs()
                .with_parallelism(par)
                .allocate_traced(problem, sink, metrics, tracer),
            AllocatorKind::MiecBlindDuration => Miec::with_assumed_duration(5)
                .with_parallelism(par)
                .allocate_traced(problem, sink, metrics, tracer),
            AllocatorKind::MiecLocalSearch => {
                let base = Miec::new()
                    .with_parallelism(par)
                    .allocate_traced(problem, sink, metrics, tracer)?;
                LocalSearch::new()
                    .with_parallelism(par)
                    .refine_instrumented(&base, sink, metrics, tracer)
                    .map(|(refined, _)| refined)
            }
            AllocatorKind::FfpsLocalSearch => {
                let base = Ffps::new().allocate(problem, rng)?;
                LocalSearch::new()
                    .with_parallelism(par)
                    .refine_instrumented(&base, sink, metrics, tracer)
                    .map(|(refined, _)| refined)
            }
            AllocatorKind::OnlineGreedy => {
                OnlineGreedy::new().allocate_traced(problem, metrics, tracer)
            }
            _ => self.build().allocate(problem, rng),
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`AllocatorKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAllocatorError(String);

impl fmt::Display for ParseAllocatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown allocator {:?}; expected one of: {}",
            self.0,
            AllocatorKind::ALL
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseAllocatorError {}

impl FromStr for AllocatorKind {
    type Err = ParseAllocatorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AllocatorKind::ALL
            .iter()
            .find(|k| k.name() == s)
            .copied()
            .ok_or_else(|| ParseAllocatorError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for kind in AllocatorKind::ALL {
            let parsed: AllocatorKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn all_covers_every_variant_once() {
        use std::collections::HashSet;
        let names: HashSet<&str> = AllocatorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AllocatorKind::ALL.len());
        for name in ["miec-blind", "miec-ls", "ffps-ls", "online-greedy"] {
            assert!(names.contains(name), "{name} missing from ALL");
        }
    }

    #[test]
    fn observed_allocation_matches_build_allocate_for_every_kind() {
        use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
        use rand::{rngs::StdRng, SeedableRng};

        let mut b = ProblemBuilder::new();
        for i in 0..5 {
            let scale = 1.0 + (i % 2) as f64;
            b = b.server(
                Resources::new(8.0 * scale, 16.0 * scale),
                PowerModel::new(40.0 * scale, 100.0 * scale),
                60.0 * scale,
            );
        }
        for j in 0..10u32 {
            b = b.vm(
                Resources::new(1.0 + f64::from(j % 3), 2.0 + f64::from(j % 4)),
                Interval::with_len(1 + j, 3 + (j % 4)),
            );
        }
        let p = b.build().unwrap();

        for kind in AllocatorKind::ALL {
            let mut rng = StdRng::seed_from_u64(9);
            let plain = kind.build().allocate(&p, &mut rng).unwrap();

            let mut sink = esvm_obs::MemorySink::new();
            let metrics = MetricsRegistry::new();
            let mut rng = StdRng::seed_from_u64(9);
            let observed = kind
                .allocate_observed(&p, &mut rng, &mut sink, &metrics)
                .unwrap();
            assert_eq!(observed.placement(), plain.placement(), "{kind}");
            assert_eq!(
                observed.total_cost().to_bits(),
                plain.total_cost().to_bits(),
                "{kind}"
            );
        }
    }

    #[test]
    fn parallel_build_matches_sequential_for_every_kind() {
        use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
        use rand::{rngs::StdRng, SeedableRng};

        let mut b = ProblemBuilder::new();
        for i in 0..5 {
            let scale = 1.0 + (i % 2) as f64;
            b = b.server(
                Resources::new(8.0 * scale, 16.0 * scale),
                PowerModel::new(40.0 * scale, 100.0 * scale),
                60.0 * scale,
            );
        }
        for j in 0..10u32 {
            b = b.vm(
                Resources::new(1.0 + f64::from(j % 3), 2.0 + f64::from(j % 4)),
                Interval::with_len(1 + j, 3 + (j % 4)),
            );
        }
        let p = b.build().unwrap();

        for kind in AllocatorKind::ALL {
            let mut rng = StdRng::seed_from_u64(11);
            let sequential = kind.build().allocate(&p, &mut rng).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let parallel = kind
                .build_with(Parallelism::new(4))
                .allocate(&p, &mut rng)
                .unwrap();
            assert_eq!(sequential.placement(), parallel.placement(), "{kind}");
            assert_eq!(
                sequential.total_cost().to_bits(),
                parallel.total_cost().to_bits(),
                "{kind}"
            );
        }
    }

    #[test]
    fn unknown_name_errors_with_candidates() {
        let err = "galactic-fit".parse::<AllocatorKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("galactic-fit") && msg.contains("miec"), "{msg}");
    }
}
