//! # esvm-core
//!
//! Energy-saving VM allocation algorithms — the primary contribution of
//! *"Energy Saving Virtual Machine Allocation in Cloud Computing"*
//! (Xie, Jia, Yang, Zhang — ICDCS Workshops 2013) plus the paper's
//! baseline and a set of ablation baselines.
//!
//! * [`Miec`] — the paper's heuristic (*Minimum Incremental Energy
//!   Cost*): VMs in increasing start-time order, each placed on the
//!   candidate server whose total energy (Eq. 17) grows the least.
//! * [`Ffps`] — the paper's baseline (*First Fit Power Saving*): same VM
//!   order, servers in one fixed random order, first fitting server wins;
//!   the same switch-off policy is applied afterwards.
//! * [`FirstFit`], [`BestFit`], [`LowestIdlePower`], [`RoundRobin`],
//!   [`Random`] — additional baselines for ablation studies;
//! * [`Consolidator`] — a live-migration consolidation post-pass, the
//!   mechanism the paper contrasts allocation against (Section V);
//! * [`LocalSearch`] — offline relocate/swap refinement, bounding how
//!   much MIEC's greediness leaves on the table.
//!
//! All algorithms implement [`Allocator`] and produce a validated
//! [`Assignment`](esvm_simcore::Assignment) whose energy can be audited
//! independently by `esvm-simcore`.
//!
//! ## Example
//!
//! ```
//! use esvm_core::{Allocator, Ffps, Miec};
//! use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let problem = ProblemBuilder::new()
//!     .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 100.0)
//!     .server(Resources::new(4.0, 8.0), PowerModel::new(40.0, 90.0), 45.0)
//!     .vm(Resources::new(1.0, 1.7), Interval::new(1, 10))
//!     .vm(Resources::new(2.0, 3.5), Interval::new(5, 14))
//!     .build()?;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let smart = Miec::new().allocate(&problem, &mut rng)?;
//! let baseline = Ffps::new().allocate(&problem, &mut rng)?;
//! assert!(smart.total_cost() <= baseline.total_cost() + 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod baselines;
mod classes;
mod error;
mod ffps;
mod miec;
mod local_search;
mod migration;
mod online;
mod registry;

pub use allocator::Allocator;
pub use baselines::{BestFit, FirstFit, LowestIdlePower, Random, RoundRobin};
pub use error::{AllocError, AllocResult};
pub use ffps::Ffps;
pub use miec::Miec;
pub use local_search::{LocalSearch, Refined, SearchMove};
pub use migration::Consolidator;
pub use online::{OnlineDecision, OnlineEngine, OnlineError, OnlineGreedy, OnlineStats, RepairOutcome};
pub use registry::AllocatorKind;
