//! Online (irrevocable-at-arrival) allocation.
//!
//! The offline allocators see the whole trace before placing anything.
//! [`OnlineEngine`] models the real cloud-provider setting instead: VM
//! requests arrive as a time-ordered event stream, each one gets a
//! placement decision *at arrival* using the same O(log K)
//! [`incremental_cost`] scoring as MIEC, and the decision is
//! irrevocable — no later relocation, no knowledge of future arrivals.
//! Departures are events too: when a VM's closed interval ends, its
//! capacity frees through [`unhost`], so a long-running service keeps
//! every ledger O(live VMs) instead of O(VMs ever seen).
//!
//! ## Cost accounting
//!
//! Unhosting a departed VM makes the ledger forget it ever ran, which
//! changes how *later* gaps on that server are priced (a fresh arrival
//! pays a switch-on instead of bridging an idle gap to history). The
//! engine therefore keeps a [`committed_cost`] accumulator with the
//! telescoping invariant `committed == retired + Σ ledger.cost()`:
//! hosting raises it by the placement delta, unhosting moves energy
//! from the live ledgers into `retired` without changing the sum. For
//! the online/offline optimality gap, decisions are exported as a
//! placement vector and re-audited by
//! [`Assignment::from_placement`] so both sides are measured by the
//! identical full-horizon Eq. 7 functional.
//!
//! ## Capacity correctness
//!
//! [`ServerLedger::fits`] is time-aware: it checks peak usage over the
//! arriving VM's interval. A new arrival at clock `t` can only overlap
//! VMs whose intervals reach `t` or later, and those are exactly the
//! ones still hosted (departures fire at `end + 1 > t`), so live-only
//! `fits` verdicts equal full-history verdicts and the final
//! `from_placement` replay is capacity-valid by construction.
//!
//! [`incremental_cost`]: esvm_simcore::ServerLedger::incremental_cost
//! [`unhost`]: esvm_simcore::ServerLedger::unhost
//! [`committed_cost`]: OnlineEngine::committed_cost
//! [`Assignment::from_placement`]: esvm_simcore::Assignment::from_placement

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};
use std::fmt;

use esvm_obs::{DecisionKind, ExplainRecord, MetricsRegistry, NoopTracer, Tracer};
use esvm_simcore::{
    departure_time, AllocationProblem, Assignment, Interval, ServerId, ServerLedger, ServerSpec,
    TimeUnit, Vm, VmEvent, VmId,
};
use rand::RngCore;

use crate::{AllocError, AllocResult, Allocator};

/// Typed rejection reasons of the online event loop. Every variant is a
/// *protocol* error: the event was malformed relative to the session
/// state and was not applied; the session itself stays usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OnlineError {
    /// The id already arrived in this session (placed, rejected or
    /// departed — ids are never reusable, which is what makes
    /// double-placement impossible).
    DuplicateVm(VmId),
    /// The arrival's start time lies before the session clock; an
    /// online decision for the past cannot be honoured.
    OutOfOrder {
        /// The offending VM.
        vm: VmId,
        /// Its claimed start time.
        start: TimeUnit,
        /// The session clock it would have to rewind.
        clock: TimeUnit,
    },
    /// A departure for an id that is not currently live.
    UnknownVm(VmId),
    /// A fault event named a server outside the fleet.
    UnknownServer(ServerId),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::DuplicateVm(vm) => write!(f, "duplicate id: {vm} already arrived"),
            OnlineError::OutOfOrder { vm, start, clock } => write!(
                f,
                "out-of-order arrival: {vm} starts at {start} but the clock is at {clock}"
            ),
            OnlineError::UnknownVm(vm) => write!(f, "unknown id: {vm} is not live"),
            OnlineError::UnknownServer(s) => write!(f, "unknown server: {s}"),
        }
    }
}

impl std::error::Error for OnlineError {}

/// The irrevocable outcome of one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineDecision {
    /// The VM was placed on the given server.
    Placed(ServerId),
    /// No up server could host the VM; the request is refused.
    Rejected,
}

impl OnlineDecision {
    /// The chosen server, when placed.
    pub fn server(&self) -> Option<ServerId> {
        match self {
            OnlineDecision::Placed(s) => Some(*s),
            OnlineDecision::Rejected => None,
        }
    }

    /// Whether the request was placed.
    pub fn is_placed(&self) -> bool {
        matches!(self, OnlineDecision::Placed(_))
    }
}

/// Running tallies of one online session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct OnlineStats {
    /// Arrivals accepted into the event loop (well-formed requests).
    pub arrivals: u64,
    /// Arrivals that received a `Placed` decision.
    pub placed: u64,
    /// Arrivals refused for lack of a feasible up server.
    pub rejected: u64,
    /// VMs whose capacity was freed (scheduled end or explicit depart).
    pub departed: u64,
    /// VMs evicted because their server went down under a fault plan.
    pub evicted: u64,
    /// Evicted VMs re-placed by the bounded-backoff repair path.
    pub repaired: u64,
    /// Peak number of simultaneously live VMs.
    pub live_peak: u64,
}

/// Outcome of one [`OnlineEngine::repair_traced`] attempt sequence for
/// a single evicted VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The remainder of the VM's interval was re-placed.
    Rehosted {
        /// The server now hosting the remainder.
        server: ServerId,
        /// The (possibly backoff-delayed) restart time.
        start: TimeUnit,
        /// Which attempt succeeded (0 = immediate, k = after the k-th
        /// backoff delay).
        attempt: u32,
    },
    /// No feasible up server within the retry budget; the VM's
    /// remaining work is lost.
    Shed,
}

/// The online allocation engine: time-ordered arrivals in, irrevocable
/// decisions out. See the [module docs](self) for the model.
#[derive(Debug, Clone)]
pub struct OnlineEngine {
    ledgers: Vec<ServerLedger>,
    /// Spec classes for asleep-candidate pruning (see [`crate::classes`]).
    class_of: Vec<usize>,
    /// Up servers with outstanding hosted pieces, ascending id. These
    /// are the only servers whose incremental cost can differ from
    /// their class twins, so each scan scores exactly `awake` plus one
    /// pristine representative per class — the decision stays O(live)
    /// no matter how large the fleet is.
    awake: BTreeSet<u32>,
    /// Up, pristine (nothing hosted) servers per spec class, ascending
    /// id. All members of a set are interchangeable; only the lowest
    /// id is ever scored, which is also MIEC's tie-break winner.
    pristine: Vec<BTreeSet<u32>>,
    /// Live placements: id → (vm, server).
    live: HashMap<VmId, (Vm, ServerId)>,
    /// Every id ever accepted — placed, rejected or departed.
    seen: HashSet<VmId>,
    /// Append-only decision log of placements, in arrival order.
    placements: Vec<(VmId, ServerId)>,
    /// Scheduled departures as (free time, id); min-heap.
    pending: BinaryHeap<Reverse<(TimeUnit, VmId)>>,
    down: Vec<bool>,
    clock: TimeUnit,
    retired_cost: f64,
    stats: OnlineStats,
}

impl OnlineEngine {
    /// A fresh session over the given fleet, clock at 0, all servers up.
    pub fn new(servers: &[ServerSpec]) -> Self {
        let classes = crate::classes::spec_classes(servers);
        let mut pristine = vec![BTreeSet::new(); classes.count];
        for (i, &class) in classes.class_of.iter().enumerate() {
            pristine[class].insert(i as u32);
        }
        Self {
            ledgers: servers.iter().map(|s| ServerLedger::new(*s)).collect(),
            class_of: classes.class_of,
            awake: BTreeSet::new(),
            pristine,
            live: HashMap::new(),
            seen: HashSet::new(),
            placements: Vec::new(),
            pending: BinaryHeap::new(),
            down: vec![false; servers.len()],
            clock: 0,
            retired_cost: 0.0,
            stats: OnlineStats::default(),
        }
    }

    /// The session clock: no accepted arrival may start before it.
    pub fn clock(&self) -> TimeUnit {
        self.clock
    }

    /// Currently live VMs.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Session tallies so far.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// The per-server energy ledgers of the *live* hosted sets.
    pub fn ledgers(&self) -> &[ServerLedger] {
        &self.ledgers
    }

    /// Total Eq. 7 energy committed by every placement so far:
    /// `retired + Σ ledger.cost()` (the telescoping invariant of the
    /// module docs). Departures move energy between the two terms
    /// without changing the sum.
    pub fn committed_cost(&self) -> f64 {
        self.retired_cost + self.ledgers.iter().map(|l| l.cost()).sum::<f64>()
    }

    /// Energy of placements that have fully departed the live ledgers.
    pub fn retired_cost(&self) -> f64 {
        self.retired_cost
    }

    /// Whether `server` is currently marked down.
    pub fn is_down(&self, server: ServerId) -> bool {
        self.down.get(server.index()).copied().unwrap_or(false)
    }

    /// The decision history as a placement vector over `n_vms` dense id
    /// slots (`None` = rejected or never arrived), ready for
    /// [`Assignment::from_placement`] re-audit.
    pub fn placement(&self, n_vms: usize) -> Vec<Option<ServerId>> {
        let mut slots = vec![None; n_vms];
        for (vm, sid) in self.placements.iter() {
            if let Some(slot) = slots.get_mut(vm.index()) {
                *slot = Some(*sid);
            }
        }
        slots
    }

    /// Moves a server back into its pristine class set when its last
    /// hosted piece leaves. `unhost` reverses `host` exactly, so a
    /// drained ledger is indistinguishable from a fresh one and may
    /// again stand behind its class representative.
    fn note_unhosted(&mut self, sid: ServerId) {
        let i = sid.index();
        if !self.down[i] && self.ledgers[i].hosted_count() == 0 {
            self.awake.remove(&(i as u32));
            self.pristine[self.class_of[i]].insert(i as u32);
        }
    }

    /// Advances the clock to `t`, firing every departure scheduled at
    /// or before `t` in (time, id) order.
    pub fn advance_to(&mut self, t: TimeUnit) {
        while let Some(Reverse((at, vm))) = self.pending.peek().copied() {
            if at > t {
                break;
            }
            self.pending.pop();
            // Stale entries (explicitly departed or evicted ids) are
            // skipped: `live` is the source of truth.
            if let Some((vm, sid)) = self.live.remove(&vm) {
                self.retired_cost += self.ledgers[sid.index()].unhost(&vm);
                self.stats.departed += 1;
                self.note_unhosted(sid);
            }
        }
        self.clock = self.clock.max(t);
    }

    /// Explicitly departs a live VM ahead of (or at) schedule, freeing
    /// its capacity now. Returns the realized Eq. 7 cost decrease.
    pub fn depart(&mut self, vm: VmId) -> Result<f64, OnlineError> {
        let (vm, sid) = self.live.remove(&vm).ok_or(OnlineError::UnknownVm(vm))?;
        let freed = self.ledgers[sid.index()].unhost(&vm);
        self.retired_cost += freed;
        self.stats.departed += 1;
        self.note_unhosted(sid);
        Ok(freed)
    }

    /// Departs every live VM (session drain). Returns how many departed.
    pub fn drain(&mut self) -> usize {
        let mut ids: Vec<VmId> = self.live.keys().copied().collect();
        ids.sort_unstable();
        let n = ids.len();
        for id in ids {
            let _ = self.depart(id);
        }
        n
    }

    /// Uninstrumented arrival: decides, commits, schedules the departure.
    pub fn arrive(&mut self, vm: Vm) -> Result<OnlineDecision, OnlineError> {
        self.arrive_traced(vm, &NoopTracer)
    }

    /// The instrumented arrival path. The scan is the MIEC argmin —
    /// ascending server ids, spec-class pruning of asleep twins,
    /// [`incremental_cost`](ServerLedger::incremental_cost) scoring,
    /// strict `<` lowest-id tie-break — restricted to up servers.
    ///
    /// Precondition failures ([`OnlineError::OutOfOrder`],
    /// [`OnlineError::DuplicateVm`]) reject the event *before* it
    /// touches any state: the clock does not move and the id is not
    /// consumed, so a corrected resubmission can still succeed
    /// (except a duplicate, whose id is consumed by definition).
    pub fn arrive_traced<T: Tracer>(
        &mut self,
        vm: Vm,
        tracer: &T,
    ) -> Result<OnlineDecision, OnlineError> {
        if vm.start() < self.clock {
            return Err(OnlineError::OutOfOrder {
                vm: vm.id(),
                start: vm.start(),
                clock: self.clock,
            });
        }
        if self.seen.contains(&vm.id()) {
            return Err(OnlineError::DuplicateVm(vm.id()));
        }
        self.advance_to(vm.start());
        self.seen.insert(vm.id());
        self.stats.arrivals += 1;

        let _decision_span = tracer.lap_span("online.decision");
        let mut best: Option<(f64, u32)> = None;
        let mut candidates = 0u64;
        let mut pruned = 0u64;
        let mut unfit = 0u64;
        let mut fp_ties = 0u64;
        {
            // Only awake servers and one pristine representative per
            // class can win the argmin; down servers are in neither
            // set, so a down twin never stands in for an up one. The
            // lexicographic (delta, id) min is exactly MIEC's strict-<
            // ascending scan with its lowest-id tie-break.
            let ledgers = &self.ledgers;
            let mut consider = |i: u32| {
                let ledger = &ledgers[i as usize];
                if !ledger.fits(&vm) {
                    if T::ENABLED {
                        unfit += 1;
                    }
                    return;
                }
                let delta = ledger.incremental_cost(&vm);
                if T::ENABLED {
                    candidates += 1;
                    if best.is_some_and(|(cost, _)| delta == cost) {
                        fp_ties += 1;
                    }
                }
                if best.is_none_or(|(cost, id)| delta < cost || (delta == cost && i < id)) {
                    best = Some((delta, i));
                }
            };
            for &i in &self.awake {
                consider(i);
            }
            for class in &self.pristine {
                if let Some(&rep) = class.iter().next() {
                    consider(rep);
                    if T::ENABLED {
                        pruned += class.len() as u64 - 1;
                    }
                }
            }
        }
        match best {
            Some((delta, winner)) => {
                let sid = ServerId(winner);
                let i = sid.index();
                let was_pristine = self.ledgers[i].hosted_count() == 0;
                self.ledgers[i].host(&vm);
                if was_pristine {
                    self.pristine[self.class_of[i]].remove(&winner);
                    self.awake.insert(winner);
                }
                self.live.insert(vm.id(), (vm, sid));
                self.placements.push((vm.id(), sid));
                self.pending.push(Reverse((departure_time(&vm), vm.id())));
                self.stats.placed += 1;
                self.stats.live_peak = self.stats.live_peak.max(self.live.len() as u64);
                if T::ENABLED {
                    tracer.explain(&ExplainRecord {
                        candidates,
                        pruned,
                        unfit,
                        shards: 1,
                        winner: Some(sid.index() as u64),
                        delta_cost: delta,
                        fp_tie: fp_ties > 0,
                        time: Some(vm.start() as u64),
                        ..ExplainRecord::new(DecisionKind::Place, vm.id().index() as u64)
                    });
                }
                Ok(OnlineDecision::Placed(sid))
            }
            None => {
                self.stats.rejected += 1;
                if T::ENABLED {
                    tracer.explain(&ExplainRecord {
                        candidates,
                        pruned,
                        unfit,
                        shards: 1,
                        time: Some(vm.start() as u64),
                        ..ExplainRecord::new(DecisionKind::Reject, vm.id().index() as u64)
                    });
                }
                Ok(OnlineDecision::Rejected)
            }
        }
    }

    /// Marks `server` down, evicting its live VMs (capacity freed, ids
    /// consumed — an online service cannot replay irrevocable
    /// decisions). Returns the evicted VMs in ascending id order.
    pub fn set_down(&mut self, server: ServerId) -> Result<Vec<Vm>, OnlineError> {
        let i = server.index();
        if i >= self.ledgers.len() {
            return Err(OnlineError::UnknownServer(server));
        }
        self.down[i] = true;
        self.awake.remove(&(i as u32));
        self.pristine[self.class_of[i]].remove(&(i as u32));
        let mut victims: Vec<Vm> = self
            .live
            .values()
            .filter(|(_, sid)| *sid == server)
            .map(|(vm, _)| *vm)
            .collect();
        victims.sort_unstable_by_key(|vm| vm.id());
        for vm in &victims {
            self.live.remove(&vm.id());
            self.retired_cost += self.ledgers[i].unhost(vm);
            self.stats.evicted += 1;
        }
        Ok(victims)
    }

    /// Marks `server` up again; it re-enters every later argmin scan.
    pub fn set_up(&mut self, server: ServerId) -> Result<(), OnlineError> {
        let i = server.index();
        if i >= self.ledgers.len() {
            return Err(OnlineError::UnknownServer(server));
        }
        self.down[i] = false;
        // Eviction drained it on the way down, so it normally rejoins
        // as pristine; the guard keeps a redundant `set_up` harmless.
        if self.ledgers[i].hosted_count() == 0 {
            self.pristine[self.class_of[i]].insert(i as u32);
        } else {
            self.awake.insert(i as u32);
        }
        Ok(())
    }

    /// Re-places an evicted VM (single attempt, no retry schedule).
    ///
    /// This is the arrival argmin with the irrevocability bookkeeping
    /// relaxed where eviction demands it: the id is already consumed
    /// (`seen`), the clock does not move (repair happens *at* the fault
    /// instant, between arrivals), and the interval is whatever
    /// remainder the caller computed. Down servers are excluded by the
    /// same candidate-set construction as [`arrive_traced`].
    ///
    /// Returns the chosen server, or `None` when no up server fits.
    ///
    /// [`arrive_traced`]: OnlineEngine::arrive_traced
    fn rehost(&mut self, vm: &Vm) -> Option<ServerId> {
        let mut best: Option<(f64, u32)> = None;
        {
            let ledgers = &self.ledgers;
            let mut consider = |i: u32| {
                let ledger = &ledgers[i as usize];
                if !ledger.fits(vm) {
                    return;
                }
                let delta = ledger.incremental_cost(vm);
                if best.is_none_or(|(cost, id)| delta < cost || (delta == cost && i < id)) {
                    best = Some((delta, i));
                }
            };
            for &i in &self.awake {
                consider(i);
            }
            for class in &self.pristine {
                if let Some(&rep) = class.iter().next() {
                    consider(rep);
                }
            }
        }
        let (_, winner) = best?;
        let sid = ServerId(winner);
        let i = sid.index();
        let was_pristine = self.ledgers[i].hosted_count() == 0;
        self.ledgers[i].host(vm);
        if was_pristine {
            self.pristine[self.class_of[i]].remove(&winner);
            self.awake.insert(winner);
        }
        self.live.insert(vm.id(), (*vm, sid));
        self.placements.push((vm.id(), sid));
        self.pending.push(Reverse((departure_time(vm), vm.id())));
        self.stats.repaired += 1;
        self.stats.live_peak = self.stats.live_peak.max(self.live.len() as u64);
        Some(sid)
    }

    /// The bounded-backoff delay before retry `attempt` (1-based),
    /// mirroring `esvm_chaos::RepairPolicy::delay_for`: exponential
    /// doubling on `backoff`, saturating, never less than one tick.
    /// (Duplicated rather than imported: the chaos crate depends on
    /// this one.)
    fn repair_delay(backoff: u32, attempt: u32) -> TimeUnit {
        backoff
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .max(1)
    }

    /// Runs the chaos-style bounded-backoff repair schedule for one
    /// evicted VM: an immediate re-place attempt at
    /// `max(clock, vm.start())`, then up to `max_retries` retries whose
    /// restart is pushed back by the exponential
    /// [`delay_for`](Self::repair_delay) schedule. A restart past the
    /// VM's end means the remaining work cannot run and the VM is shed.
    ///
    /// Never panics and never returns an error: repair is best-effort
    /// by contract — the fault already happened.
    pub fn repair_traced<T: Tracer>(
        &mut self,
        vm: Vm,
        max_retries: u32,
        backoff: u32,
        tracer: &T,
    ) -> RepairOutcome {
        let mut start = vm.start().max(self.clock);
        for attempt in 0..=max_retries {
            if attempt > 0 {
                start = start.saturating_add(Self::repair_delay(backoff, attempt));
            }
            if start > vm.end() {
                break;
            }
            let remainder = Vm::new(vm.id().0, vm.demand(), Interval::new(start, vm.end()));
            if let Some(server) = self.rehost(&remainder) {
                if T::ENABLED {
                    tracer.explain(&ExplainRecord {
                        winner: Some(server.index() as u64),
                        time: Some(start as u64),
                        ..ExplainRecord::new(DecisionKind::Repair, vm.id().index() as u64)
                    });
                }
                return RepairOutcome::Rehosted {
                    server,
                    start,
                    attempt,
                };
            }
        }
        if T::ENABLED {
            tracer.explain(&ExplainRecord {
                time: Some(self.clock as u64),
                ..ExplainRecord::new(DecisionKind::Shed, vm.id().index() as u64)
            });
        }
        RepairOutcome::Shed
    }

    /// Uninstrumented [`repair_traced`](Self::repair_traced).
    pub fn repair(&mut self, vm: Vm, max_retries: u32, backoff: u32) -> RepairOutcome {
        self.repair_traced(vm, max_retries, backoff, &NoopTracer)
    }

    /// Applies one canonical stream event (see
    /// [`event_order`](esvm_simcore::event_order)). Arrivals return
    /// their decision; departures return `None`. A departure for an id
    /// that already left (e.g. evicted, or drained early) is a no-op;
    /// one for an id that never arrived is [`OnlineError::UnknownVm`].
    pub fn apply(&mut self, event: VmEvent) -> Result<Option<OnlineDecision>, OnlineError> {
        match event {
            VmEvent::Arrive(vm) => self.arrive(vm).map(Some),
            VmEvent::Depart { vm, at } => {
                if !self.seen.contains(&vm) {
                    return Err(OnlineError::UnknownVm(vm));
                }
                self.advance_to(at);
                // `advance_to` already fired it if it was scheduled at
                // or before `at`; anything still live departs now.
                if self.live.contains_key(&vm) {
                    self.depart(vm)?;
                }
                Ok(None)
            }
        }
    }
}

/// The MIEC scoring rule run online: requests in arrival order, each
/// placed irrevocably on the feasible up server with the least
/// incremental Eq. 7 cost at that instant. Registered as
/// [`AllocatorKind::OnlineGreedy`](crate::AllocatorKind::OnlineGreedy)
/// so it flows through the differential suites, chaos replay and
/// `esvm query` like every offline kind.
///
/// The event loop is inherently sequential (each decision conditions
/// the next), so the allocator is bit-exact across `ESVM_THREADS`
/// settings by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineGreedy;

impl OnlineGreedy {
    /// Creates the online allocator.
    pub fn new() -> Self {
        Self
    }

    /// Instrumented run: replays the problem's canonical arrival order
    /// through an [`OnlineEngine`], then re-audits the decisions as a
    /// full-horizon [`Assignment`] (see the module docs on cost
    /// accounting).
    pub fn allocate_traced<'p, T: Tracer>(
        &self,
        problem: &'p AllocationProblem,
        metrics: &MetricsRegistry,
        tracer: &T,
    ) -> AllocResult<Assignment<'p>> {
        let _run_span = tracer.span("online.run");
        let mut engine = OnlineEngine::new(problem.servers());
        for j in problem.vms_by_start_time() {
            let vm = problem.vms()[j];
            // The feed is sorted by (start, id) over dense unique ids,
            // so the engine's preconditions hold by construction.
            match engine.arrive_traced(vm, tracer) {
                Ok(OnlineDecision::Placed(_)) => {}
                Ok(OnlineDecision::Rejected) => {
                    return Err(AllocError::NoFeasibleServer(vm.id()))
                }
                Err(e) => unreachable!("arrival-sorted feed violated online preconditions: {e}"),
            }
        }
        let stats = engine.stats();
        metrics.add("online.arrivals", stats.arrivals);
        metrics.add("online.vms_placed", stats.placed);
        metrics.add("online.departures", stats.departed);
        metrics.set_gauge("online.live_peak", stats.live_peak as f64);
        let placement = engine.placement(problem.vm_count());
        Ok(Assignment::from_placement(problem, &placement)?)
    }
}

impl Allocator for OnlineGreedy {
    fn name(&self) -> &'static str {
        "online-greedy"
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        _rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        self.allocate_traced(problem, &MetricsRegistry::new(), &NoopTracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
    use rand::{rngs::StdRng, SeedableRng};

    fn fleet(n: usize) -> Vec<ServerSpec> {
        (0..n)
            .map(|i| {
                ServerSpec::new(
                    i as u32,
                    Resources::new(8.0, 16.0),
                    PowerModel::new(100.0, 200.0),
                    120.0,
                )
            })
            .collect()
    }

    fn vm(id: u32, start: u32, end: u32, cpu: f64) -> Vm {
        Vm::new(id, Resources::new(cpu, cpu), Interval::new(start, end))
    }

    #[test]
    fn places_and_frees_capacity_on_departure() {
        let mut engine = OnlineEngine::new(&fleet(1));
        // Two VMs that saturate the server back to back: the second
        // only fits because the first departs first.
        assert!(engine.arrive(vm(0, 1, 10, 8.0)).unwrap().is_placed());
        assert_eq!(engine.live_count(), 1);
        let d = engine.arrive(vm(1, 11, 20, 8.0)).unwrap();
        assert_eq!(d, OnlineDecision::Placed(ServerId(0)));
        assert_eq!(engine.stats().departed, 1);
        assert_eq!(engine.live_count(), 1);
    }

    #[test]
    fn overlapping_saturation_is_rejected_not_errored() {
        let mut engine = OnlineEngine::new(&fleet(1));
        assert!(engine.arrive(vm(0, 1, 10, 8.0)).unwrap().is_placed());
        assert_eq!(
            engine.arrive(vm(1, 5, 8, 1.0)).unwrap(),
            OnlineDecision::Rejected
        );
        assert_eq!(engine.stats().rejected, 1);
    }

    #[test]
    fn duplicate_and_out_of_order_ids_are_typed_errors() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 5, 9, 1.0)).unwrap();
        assert_eq!(
            engine.arrive(vm(0, 6, 9, 1.0)),
            Err(OnlineError::DuplicateVm(VmId(0)))
        );
        assert_eq!(
            engine.arrive(vm(1, 2, 9, 1.0)),
            Err(OnlineError::OutOfOrder {
                vm: VmId(1),
                start: 2,
                clock: 5,
            })
        );
        // Precondition failures consume nothing: the same id with a
        // corrected start still works.
        assert!(engine.arrive(vm(1, 5, 9, 1.0)).unwrap().is_placed());
    }

    #[test]
    fn depart_unknown_id_is_a_typed_error() {
        let mut engine = OnlineEngine::new(&fleet(1));
        assert_eq!(engine.depart(VmId(3)), Err(OnlineError::UnknownVm(VmId(3))));
        assert_eq!(
            engine.apply(VmEvent::Depart { vm: VmId(3), at: 1 }),
            Err(OnlineError::UnknownVm(VmId(3)))
        );
    }

    #[test]
    fn down_servers_are_never_chosen() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.set_down(ServerId(0)).unwrap();
        let d = engine.arrive(vm(0, 1, 5, 1.0)).unwrap();
        assert_eq!(d, OnlineDecision::Placed(ServerId(1)));
        engine.set_down(ServerId(1)).unwrap();
        assert_eq!(
            engine.arrive(vm(1, 2, 5, 1.0)).unwrap(),
            OnlineDecision::Rejected
        );
        engine.set_up(ServerId(0)).unwrap();
        assert!(engine.arrive(vm(2, 3, 5, 1.0)).unwrap().is_placed());
        assert_eq!(engine.set_down(ServerId(9)), Err(OnlineError::UnknownServer(ServerId(9))));
    }

    #[test]
    fn eviction_frees_capacity_and_counts() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 1, 10, 8.0)).unwrap();
        engine.arrive(vm(1, 1, 10, 8.0)).unwrap();
        let victims = engine.set_down(ServerId(0)).unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(engine.stats().evicted, 1);
        assert_eq!(engine.live_count(), 1);
        // The scheduled departure of the evicted VM is stale, not a
        // double-unhost.
        engine.advance_to(20);
        assert_eq!(engine.stats().departed, 1);
    }

    #[test]
    fn committed_cost_is_conserved_across_departures() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 1, 10, 4.0)).unwrap();
        engine.arrive(vm(1, 3, 6, 2.0)).unwrap();
        let before = engine.committed_cost();
        engine.advance_to(30);
        assert_eq!(engine.live_count(), 0);
        let after = engine.committed_cost();
        assert!(
            (before - after).abs() < 1e-9 * before.max(1.0),
            "departures must not change committed cost: {before} vs {after}"
        );
        assert!(engine.retired_cost() > 0.0);
    }

    #[test]
    fn matches_miec_when_no_departures_interleave() {
        // All VMs overlap one window, so online sees exactly the state
        // MIEC sees at each step and must pick identical servers.
        let mut builder = ProblemBuilder::new();
        for s in fleet(4) {
            builder = builder.server(s.capacity(), *s.power(), s.transition_cost());
        }
        for i in 0..10u32 {
            builder = builder.vm(
                Resources::new(1.0 + f64::from(i % 3), 2.0),
                Interval::new(1 + i, 40),
            );
        }
        let problem = builder.build().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let online = OnlineGreedy::new().allocate(&problem, &mut rng).unwrap();
        let offline = crate::Miec::new().allocate(&problem, &mut rng).unwrap();
        assert_eq!(online.placement(), offline.placement());
        assert_eq!(
            online.total_cost().to_bits(),
            offline.total_cost().to_bits()
        );
    }

    #[test]
    fn repair_rehosts_the_remainder_on_another_server() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 1, 10, 8.0)).unwrap();
        engine.advance_to(4);
        let victims = engine.set_down(ServerId(0)).unwrap();
        assert_eq!(victims.len(), 1);
        let outcome = engine.repair(victims[0], 3, 2);
        // Immediate attempt: remainder [4, 10] lands on the other server.
        assert_eq!(
            outcome,
            RepairOutcome::Rehosted {
                server: ServerId(1),
                start: 4,
                attempt: 0,
            }
        );
        assert_eq!(engine.stats().repaired, 1);
        assert_eq!(engine.live_count(), 1);
        // The rehosted remainder departs on schedule like any placement.
        engine.advance_to(20);
        assert_eq!(engine.live_count(), 0);
    }

    #[test]
    fn repair_backs_off_then_sheds_within_budget() {
        // One server only: while it is down, nothing can host, and the
        // backoff schedule (2, 4, 8 after the immediate try) pushes the
        // restart past the VM's end, so the repair sheds.
        let mut engine = OnlineEngine::new(&fleet(1));
        engine.arrive(vm(0, 1, 10, 2.0)).unwrap();
        let victims = engine.set_down(ServerId(0)).unwrap();
        assert_eq!(engine.repair(victims[0], 3, 2), RepairOutcome::Shed);
        assert_eq!(engine.stats().repaired, 0);
        // The engine stays usable after a shed.
        engine.set_up(ServerId(0)).unwrap();
        assert!(engine.arrive(vm(1, 2, 5, 1.0)).unwrap().is_placed());
    }

    #[test]
    fn repair_retry_succeeds_when_capacity_frees_in_time() {
        // Server 1 is saturated by a VM that departs at t=3; the evicted
        // VM's immediate attempt at t=1 fails but the first backoff
        // retry at t=1+2=3... still overlaps vm 1 (ends 2). Use end 2:
        // departure fires at 3, so a retry starting at 3 fits.
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 1, 10, 8.0)).unwrap(); // server 0
        engine.arrive(vm(1, 1, 2, 8.0)).unwrap(); // server 1, departs at 3
        let victims = engine.set_down(ServerId(0)).unwrap();
        let outcome = engine.repair(victims[0], 3, 2);
        match outcome {
            RepairOutcome::Rehosted {
                server,
                start,
                attempt,
            } => {
                assert_eq!(server, ServerId(1));
                assert_eq!(start, 3);
                assert_eq!(attempt, 1);
            }
            RepairOutcome::Shed => panic!("retry should have succeeded"),
        }
        // Conservation: committed cost is still retired + live.
        let recomputed =
            engine.retired_cost() + engine.ledgers().iter().map(|l| l.cost()).sum::<f64>();
        assert!((engine.committed_cost() - recomputed).abs() < 1e-9);
    }

    #[test]
    fn drain_departs_everything() {
        let mut engine = OnlineEngine::new(&fleet(2));
        engine.arrive(vm(0, 1, 10, 1.0)).unwrap();
        engine.arrive(vm(1, 1, 10, 1.0)).unwrap();
        assert_eq!(engine.drain(), 2);
        assert_eq!(engine.live_count(), 0);
        assert_eq!(engine.stats().departed, 2);
    }
}
