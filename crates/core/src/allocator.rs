//! The [`Allocator`] trait shared by all algorithms.

use crate::AllocResult;
use esvm_simcore::{AllocationProblem, Assignment};
use rand::RngCore;

/// An offline VM allocation algorithm.
///
/// Every algorithm in this workspace processes the problem's VMs in
/// increasing start-time order (Section III of the paper: "Our algorithm
/// allocates VMs in the increasing order of their starting time"; the
/// FFPS baseline uses the same order). They differ only in *which* of the
/// feasible servers they pick per VM.
///
/// The `rng` parameter drives randomized policies (FFPS's random server
/// order, the `Random` baseline); deterministic algorithms ignore it.
/// Passing the RNG per call rather than storing it in the allocator keeps
/// allocators `Sync` and lets the experiment runner control seeding per
/// run, which makes every figure in the paper reproduction
/// bit-reproducible.
pub trait Allocator: Send + Sync {
    /// Short machine-friendly name (used in tables, CSV and CLI).
    fn name(&self) -> &'static str;

    /// Allocates every VM of `problem` to a server.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoFeasibleServer`](crate::AllocError::NoFeasibleServer)
    /// when some VM fits on no server given earlier placements. The
    /// returned assignment is always complete and capacity-valid on
    /// success.
    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>>;
}

impl<T: Allocator + ?Sized> Allocator for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        (**self).allocate(problem, rng)
    }
}

impl<T: Allocator + ?Sized> Allocator for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn allocate<'p>(
        &self,
        problem: &'p AllocationProblem,
        rng: &mut dyn RngCore,
    ) -> AllocResult<Assignment<'p>> {
        (**self).allocate(problem, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Miec;

    #[test]
    fn trait_is_object_safe_and_blanket_impls_forward() {
        let boxed: Box<dyn Allocator> = Box::new(Miec::new());
        assert_eq!(boxed.name(), "miec");
        let by_ref: &dyn Allocator = &Miec::new();
        assert_eq!((&by_ref).name(), "miec");
    }
}
