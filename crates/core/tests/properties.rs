//! Property-based tests of the allocation algorithms.

use esvm_core::{
    AllocError, Allocator, AllocatorKind, Consolidator, Ffps, LocalSearch, Miec, RoundRobin,
    SearchMove,
};
use esvm_simcore::energy::full_cost;
use esvm_simcore::{
    AllocationProblem, Assignment, Interval, PowerModel, Resources, ServerLedger, ServerSpec, Vm,
    VmId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Whether two accepted moves are the same *decision*, ignoring the
/// recorded score: the delta-scored and clone-and-rescan evaluators
/// compute the same value through different float arithmetic, so the
/// `delta` fields legitimately differ in the last ulps.
fn same_decision(a: &SearchMove, b: &SearchMove) -> bool {
    match (a, b) {
        (
            SearchMove::Relocate { vm, from, to, .. },
            SearchMove::Relocate {
                vm: vm2,
                from: from2,
                to: to2,
                ..
            },
        ) => vm == vm2 && from == from2 && to == to2,
        (
            SearchMove::Swap {
                a: a1,
                b: b1,
                server_a: sa1,
                server_b: sb1,
                ..
            },
            SearchMove::Swap {
                a: a2,
                b: b2,
                server_a: sa2,
                server_b: sb2,
                ..
            },
        ) => a1 == a2 && b1 == b2 && sa1 == sa2 && sb1 == sb2,
        _ => false,
    }
}

/// The clone-and-rescan score of `m` against explicit per-server VM
/// lists: the ground truth every accepted move is checked against.
fn oracle_move_delta(problem: &AllocationProblem, hosts: &[Vec<Vm>], m: &SearchMove) -> f64 {
    let specs = problem.servers();
    let cost = |i: usize, vms: &[Vm]| full_cost(&specs[i], vms);
    match *m {
        SearchMove::Relocate { vm, from, to, .. } => {
            let v = problem.vms()[vm.index()];
            let without: Vec<Vm> = hosts[from.index()]
                .iter()
                .filter(|x| x.id() != vm)
                .copied()
                .collect();
            let mut with = hosts[to.index()].clone();
            with.push(v);
            (cost(from.index(), &without) - cost(from.index(), &hosts[from.index()]))
                + (cost(to.index(), &with) - cost(to.index(), &hosts[to.index()]))
        }
        SearchMove::Swap {
            a,
            b,
            server_a,
            server_b,
            ..
        } => {
            let (va, vb) = (problem.vms()[a.index()], problem.vms()[b.index()]);
            let mut ra: Vec<Vm> = hosts[server_a.index()]
                .iter()
                .filter(|x| x.id() != a)
                .copied()
                .collect();
            ra.push(vb);
            let mut rb: Vec<Vm> = hosts[server_b.index()]
                .iter()
                .filter(|x| x.id() != b)
                .copied()
                .collect();
            rb.push(va);
            (cost(server_a.index(), &ra) - cost(server_a.index(), &hosts[server_a.index()]))
                + (cost(server_b.index(), &rb) - cost(server_b.index(), &hosts[server_b.index()]))
        }
    }
}

/// Applies an accepted move to the explicit VM lists, mirroring the
/// search's own bookkeeping (`swap_remove`, push) so the list orders —
/// and therefore the float summation orders — stay identical.
fn apply_move(hosts: &mut [Vec<Vm>], m: &SearchMove) {
    let mut transfer = |vm: VmId, from: usize, to: usize| {
        let idx = hosts[from].iter().position(|x| x.id() == vm).unwrap();
        let v = hosts[from].swap_remove(idx);
        hosts[to].push(v);
    };
    match *m {
        SearchMove::Relocate { vm, from, to, .. } => transfer(vm, from.index(), to.index()),
        SearchMove::Swap {
            a,
            b,
            server_a,
            server_b,
            ..
        } => {
            transfer(a, server_a.index(), server_b.index());
            transfer(b, server_b.index(), server_a.index());
        }
    }
}

/// Per-server VM lists for a complete assignment, in VM-index order —
/// the same initial state `LocalSearch::refine_traced` builds.
fn host_lists(problem: &AllocationProblem, base: &Assignment) -> Vec<Vec<Vm>> {
    let mut hosts: Vec<Vec<Vm>> = vec![Vec::new(); problem.server_count()];
    for (j, slot) in base.placement().iter().enumerate() {
        hosts[slot.expect("complete").index()].push(problem.vms()[j]);
    }
    hosts
}

/// Certifies that the first VM two complete MIEC runs place differently
/// was a genuine tie: replayed at the common state, both chosen servers
/// offer the same score under the delta arithmetic *and* under the
/// clone-and-rescan reference arithmetic. On such ties the delta path
/// computes exact equality and takes the lowest id, while the
/// reference's difference-of-sums carries last-ulp rounding noise that
/// can break the tie either way — the only way the two are allowed to
/// disagree. `alpha_free`/`assumed` mirror the variant's scoring knobs.
fn certify_divergence_is_tie(
    problem: &AllocationProblem,
    fast: &Assignment,
    slow: &Assignment,
    alpha_free: bool,
    assumed: Option<u32>,
) -> Result<(), TestCaseError> {
    // Scoring ledgers as the variant saw them (α zeroed for the
    // transition-cost ablation); commitment always uses the real VM.
    let mut ledgers: Vec<ServerLedger> = problem
        .servers()
        .iter()
        .map(|s| {
            let alpha = if alpha_free { 0.0 } else { s.transition_cost() };
            ServerLedger::new(ServerSpec::new(s.id(), s.capacity(), *s.power(), alpha))
        })
        .collect();
    for j in problem.vms_by_start_time() {
        let vm = &problem.vms()[j];
        let f = fast.placement()[vm.id().index()].expect("complete run");
        let s = slow.placement()[vm.id().index()].expect("complete run");
        if f != s {
            let scoring = match assumed {
                None => *vm,
                Some(u) => Vm::new(vm.id(), vm.demand(), Interval::with_len(vm.start(), u)),
            };
            let (lf, ls) = (&ledgers[f.index()], &ledgers[s.index()]);
            let delta_gap =
                (lf.incremental_cost(&scoring) - ls.incremental_cost(&scoring)).abs();
            let reference_gap = (lf.reference_incremental_cost(&scoring)
                - ls.reference_incremental_cost(&scoring))
            .abs();
            prop_assert!(
                delta_gap < 1e-9 && reference_gap < 1e-9,
                "divergence at {} is not an FP tie: delta gap {:e}, reference gap {:e}",
                vm.id(), delta_gap, reference_gap
            );
            return Ok(());
        }
        ledgers[s.index()].host(vm);
    }
    Ok(())
}

/// Random problems where the first server can host any VM (so the
/// instance is always valid, though individual placements may still be
/// infeasible under load).
fn arb_problem() -> impl Strategy<Value = AllocationProblem> {
    let server = (1u32..=10, 1u32..=10, 1u32..=15, 1u32..=15, 0u32..=40);
    let vm = (1u32..=6, 1u32..=6, 1u32..=40, 1u32..=8);
    (
        proptest::collection::vec(server, 0..=4),
        proptest::collection::vec(vm, 0..=12),
    )
        .prop_map(|(servers, vms)| {
            let mut specs = vec![ServerSpec::new(
                0,
                Resources::new(12.0, 12.0),
                PowerModel::new(8.0, 30.0),
                15.0,
            )];
            for (i, (cpu, mem, idle, dynamic, alpha)) in servers.into_iter().enumerate() {
                specs.push(ServerSpec::new(
                    (i + 1) as u32,
                    Resources::new(f64::from(cpu), f64::from(mem)),
                    PowerModel::new(f64::from(idle), f64::from(idle + dynamic)),
                    f64::from(alpha),
                ));
            }
            let vms: Vec<Vm> = vms
                .into_iter()
                .enumerate()
                .map(|(j, (cpu, mem, start, len))| {
                    Vm::new(
                        j as u32,
                        Resources::new(f64::from(cpu.min(12)), f64::from(mem.min(12))),
                        Interval::with_len(start, len),
                    )
                })
                .collect();
            AllocationProblem::new(specs, vms).expect("valid by construction")
        })
}

/// Random problems whose servers are many copies of a few spec classes —
/// the homogeneous-rack shape where MIEC's spec-class pruning actually
/// prunes (every random spec in `arb_problem` tends to be unique).
fn arb_clustered_problem() -> impl Strategy<Value = AllocationProblem> {
    let class = (4u32..=12, 4u32..=12, 1u32..=15, 1u32..=15, 0u32..=40, 1usize..=5);
    let vm = (1u32..=4, 1u32..=4, 1u32..=40, 1u32..=8);
    (
        proptest::collection::vec(class, 1..=3),
        proptest::collection::vec(vm, 0..=15),
    )
        .prop_map(|(classes, vms)| {
            let mut specs = Vec::new();
            for (cpu, mem, idle, dynamic, alpha, copies) in classes {
                for _ in 0..copies {
                    specs.push(ServerSpec::new(
                        specs.len() as u32,
                        Resources::new(f64::from(cpu), f64::from(mem)),
                        PowerModel::new(f64::from(idle), f64::from(idle + dynamic)),
                        f64::from(alpha),
                    ));
                }
            }
            let vms: Vec<Vm> = vms
                .into_iter()
                .enumerate()
                .map(|(j, (cpu, mem, start, len))| {
                    Vm::new(
                        j as u32,
                        Resources::new(f64::from(cpu), f64::from(mem)),
                        Interval::with_len(start, len),
                    )
                })
                .collect();
            AllocationProblem::new(specs, vms).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MIEC's final cost equals the sum of the incremental costs it
    /// accepted — i.e. the greedy bookkeeping is exact.
    #[test]
    fn miec_cost_is_sum_of_increments(problem in arb_problem()) {
        let mut rng = StdRng::seed_from_u64(1);
        let Ok(assignment) = Miec::new().allocate(&problem, &mut rng) else {
            return Ok(());
        };
        // Replay the placements in start-time order, accumulating
        // increments on a fresh assignment.
        let mut replay = esvm_simcore::Assignment::new(&problem);
        let mut total = 0.0;
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let server = assignment.server_of(vm.id()).unwrap();
            total += replay.ledger(server).incremental_cost(vm);
            replay.place(vm.id(), server).unwrap();
        }
        prop_assert!((total - assignment.total_cost()).abs() < 1e-6);
    }

    /// Deterministic allocators ignore the RNG completely.
    #[test]
    fn deterministic_allocators_ignore_rng(problem in arb_problem(), s1 in 0u64..99, s2 in 100u64..199) {
        for kind in [
            AllocatorKind::Miec,
            AllocatorKind::MiecNoAlpha,
            AllocatorKind::FirstFit,
            AllocatorKind::BestFit,
            AllocatorKind::LowestIdlePower,
            AllocatorKind::RoundRobin,
        ] {
            let a = kind.build().allocate(&problem, &mut StdRng::seed_from_u64(s1));
            let b = kind.build().allocate(&problem, &mut StdRng::seed_from_u64(s2));
            match (a, b) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.placement(), b.placement()),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => return Err(TestCaseError::fail(format!("{kind}: divergent outcomes"))),
            }
        }
    }

    /// The greedy invariant, verified by replay: at every step MIEC's
    /// chosen server has minimal incremental cost among all feasible
    /// servers at that step (ties broken by lowest id).
    #[test]
    fn miec_choice_is_stepwise_minimal(problem in arb_problem()) {
        let mut rng = StdRng::seed_from_u64(3);
        let Ok(assignment) = Miec::new().allocate(&problem, &mut rng) else {
            return Ok(());
        };
        let mut replay = esvm_simcore::Assignment::new(&problem);
        for j in problem.vms_by_start_time() {
            let vm = &problem.vms()[j];
            let chosen = assignment.server_of(vm.id()).unwrap();
            let chosen_delta = replay.ledger(chosen).incremental_cost(vm);
            for s in 0..problem.server_count() as u32 {
                let sid = esvm_simcore::ServerId(s);
                if !replay.ledger(sid).fits(vm) {
                    continue;
                }
                let delta = replay.ledger(sid).incremental_cost(vm);
                prop_assert!(
                    delta > chosen_delta - 1e-9
                        || (delta >= chosen_delta - 1e-9 && sid >= chosen),
                    "{}: server {} delta {} beats chosen {} delta {}",
                    vm.id(), s, delta, chosen.index(), chosen_delta
                );
            }
            replay.place(vm.id(), chosen).unwrap();
        }
    }

    /// The optimised MIEC (spec-class pruning + delta-based scoring)
    /// places every VM exactly where the reference implementation (full
    /// scan, clone-and-rescan scoring — the seed semantics) does, across
    /// all scoring variants — except on exact ties, where the reference's
    /// difference-of-sums breaks the tie by rounding noise; any such
    /// divergence must be certified as a genuine tie. Ffps, local search
    /// and migration share the unchanged `fits`/`full_cost` paths, so
    /// MIEC is the only allocator whose scoring arithmetic changed.
    #[test]
    fn optimised_miec_matches_reference_placements(problem in arb_problem(), seed in 0u64..1000) {
        for (fast, slow, alpha_free, assumed) in [
            (Miec::new(), Miec::reference(), false, None),
            (
                Miec::ignoring_transition_costs(),
                Miec::ignoring_transition_costs().with_reference_scoring(),
                true,
                None,
            ),
            (
                Miec::with_assumed_duration(4),
                Miec::with_assumed_duration(4).with_reference_scoring(),
                false,
                Some(4),
            ),
        ] {
            let a = fast.allocate(&problem, &mut StdRng::seed_from_u64(seed));
            let b = slow.allocate(&problem, &mut StdRng::seed_from_u64(seed));
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    if a.placement() != b.placement() {
                        certify_divergence_is_tie(&problem, &a, &b, alpha_free, assumed)?;
                    }
                }
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => return Err(TestCaseError::fail(
                    format!("{}: optimised and reference runs diverged", fast.name()),
                )),
            }
        }
    }

    /// Same equivalence on clustered fleets (many servers per spec
    /// class), where the pruning path is actually exercised: asleep
    /// duplicates are skipped yet the lowest-id tie-break must survive.
    #[test]
    fn pruning_preserves_placements_on_clustered_fleets(
        problem in arb_clustered_problem(),
        seed in 0u64..1000,
    ) {
        let a = Miec::new().allocate(&problem, &mut StdRng::seed_from_u64(seed));
        // Pruning in isolation (same delta scoring, full scan) must be
        // byte-identical — asleep same-class servers score bit-for-bit
        // the same, so skipping them can never change the argmin.
        let u = Miec::new().without_pruning().allocate(&problem, &mut StdRng::seed_from_u64(seed));
        match (&a, &u) {
            (Ok(a), Ok(u)) => prop_assert_eq!(a.placement(), u.placement()),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => return Err(TestCaseError::fail("pruned and unpruned runs diverged".to_string())),
        }
        let b = Miec::reference().allocate(&problem, &mut StdRng::seed_from_u64(seed));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                if a.placement() != b.placement() {
                    certify_divergence_is_tie(&problem, &a, &b, false, None)?;
                }
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => return Err(TestCaseError::fail("pruned and reference runs diverged".to_string())),
        }
    }

    /// Every move the delta-scored local search accepts carries exactly
    /// the score the clone-and-rescan oracle assigns it at that state,
    /// and the accumulated deltas land on the refined total cost.
    #[test]
    fn local_search_deltas_match_rescan_oracle(problem in arb_problem(), seed in 0u64..1000) {
        let Ok(base) = RoundRobin::new().allocate(&problem, &mut StdRng::seed_from_u64(seed))
        else {
            return Ok(());
        };
        let (refined, moves) = LocalSearch::new().refine_traced(&base).unwrap();
        let mut hosts = host_lists(&problem, &base);
        let mut total = base.total_cost();
        for m in &moves {
            let delta = match *m {
                SearchMove::Relocate { delta, .. } | SearchMove::Swap { delta, .. } => delta,
            };
            prop_assert!(delta < -1e-9, "accepted a non-improving move: {:?}", m);
            let oracle = oracle_move_delta(&problem, &hosts, m);
            prop_assert!(
                (delta - oracle).abs() < 1e-9,
                "{:?}: delta {} vs rescan oracle {}",
                m, delta, oracle
            );
            apply_move(&mut hosts, m);
            total += delta;
        }
        prop_assert!(
            (total - refined.total_cost()).abs() < 1e-6,
            "accumulated {} vs audited {}",
            total, refined.total_cost()
        );
    }

    /// The delta-scored search takes exactly the same trajectory as the
    /// retained clone-and-rescan oracle. The two arithmetics agree to
    /// ~1e-9 on every score, so the only way the trajectories may
    /// legitimately part is a score sitting at the −1e-9 acceptance
    /// threshold, where last-ulp noise breaks the accept/skip decision
    /// either way — any divergence must certify as such a tie.
    #[test]
    fn local_search_matches_reference_modulo_ties(problem in arb_problem(), seed in 0u64..1000) {
        let Ok(base) = RoundRobin::new().allocate(&problem, &mut StdRng::seed_from_u64(seed))
        else {
            return Ok(());
        };
        let (fast, fast_moves) = LocalSearch::new().refine_traced(&base).unwrap();
        let (slow, slow_moves) = LocalSearch::reference().refine_traced(&base).unwrap();
        let prefix = fast_moves
            .iter()
            .zip(&slow_moves)
            .take_while(|(a, b)| same_decision(a, b))
            .count();
        if prefix == fast_moves.len() && prefix == slow_moves.len() {
            prop_assert_eq!(fast.placement(), slow.placement());
            return Ok(());
        }
        // Replay the common prefix, then certify the divergence: of the
        // two next accepted moves, the one at the earlier scan position
        // was accepted by one evaluator and skipped by the other, so its
        // true score must straddle the acceptance threshold.
        let mut hosts = host_lists(&problem, &base);
        for m in &fast_moves[..prefix] {
            apply_move(&mut hosts, m);
        }
        let candidates: Vec<f64> = [fast_moves.get(prefix), slow_moves.get(prefix)]
            .into_iter()
            .flatten()
            .map(|m| oracle_move_delta(&problem, &hosts, m))
            .collect();
        prop_assert!(
            candidates.iter().any(|d| (d + 1e-9).abs() < 1e-8),
            "divergence after {} moves is not an FP tie: next-move scores {:?}",
            prefix, candidates
        );
    }

    /// The delta-scored consolidation pass reaches the same schedule as
    /// the clone-and-rescan oracle; when an FP tie at the `min_gain`
    /// threshold lets them part, both still audit to nearly the same
    /// cost and neither ever exceeds the unconsolidated baseline.
    #[test]
    fn consolidation_fast_matches_reference(problem in arb_problem(), seed in 0u64..1000) {
        let Ok(base) = Ffps::new().allocate(&problem, &mut StdRng::seed_from_u64(seed))
        else {
            return Ok(());
        };
        let fast = Consolidator::new(1.0).consolidate(&base).unwrap();
        let slow = Consolidator::reference(1.0).consolidate(&base).unwrap();
        let fast_audit = fast.audit().unwrap();
        let slow_audit = slow.audit().unwrap();
        prop_assert!(fast_audit.total_cost <= base.total_cost() + 1e-6);
        prop_assert!(slow_audit.total_cost <= base.total_cost() + 1e-6);
        let same = (0..problem.vm_count())
            .all(|j| fast.pieces_of(VmId(j as u32)) == slow.pieces_of(VmId(j as u32)));
        if same {
            prop_assert_eq!(fast_audit.migrations, slow_audit.migrations);
            prop_assert!((fast_audit.total_cost - slow_audit.total_cost).abs() < 1e-6);
        } else {
            // A tied eviction decision shifts the total by ≈ min_gain.
            prop_assert!(
                (fast_audit.total_cost - slow_audit.total_cost).abs() < 1e-3,
                "schedules diverged by more than a tie: {} vs {}",
                fast_audit.total_cost, slow_audit.total_cost
            );
        }
    }

    /// Failure is honest: when an allocator reports NoFeasibleServer,
    /// the VM it names really fits no server at that point of its run.
    #[test]
    fn first_fit_failure_names_a_truly_stuck_vm(problem in arb_problem()) {
        let mut rng = StdRng::seed_from_u64(5);
        if let Err(AllocError::NoFeasibleServer(vm)) =
            esvm_core::FirstFit::new().allocate(&problem, &mut rng)
        {
            // Re-run the prefix before `vm` and verify no server fits it.
            let mut partial = esvm_simcore::Assignment::new(&problem);
            for j in problem.vms_by_start_time() {
                let v = &problem.vms()[j];
                if v.id() == vm {
                    break;
                }
                let sid = (0..problem.server_count() as u32)
                    .map(esvm_simcore::ServerId)
                    .find(|&s| partial.ledger(s).fits(v))
                    .expect("prefix was placeable");
                partial.place(v.id(), sid).unwrap();
            }
            let stuck = &problem.vms()[vm.index()];
            for s in 0..problem.server_count() as u32 {
                prop_assert!(!partial.ledger(esvm_simcore::ServerId(s)).fits(stuck));
            }
        }
    }
}
