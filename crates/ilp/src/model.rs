//! Sparse description of a minimisation LP / MILP.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a decision variable.
pub type VarId = usize;

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        })
    }
}

/// One sparse linear constraint `Σ coeffs · x (op) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// `(variable, coefficient)` pairs; variables not listed have
    /// coefficient zero.
    pub coeffs: Vec<(VarId, f64)>,
    /// The relation.
    pub op: ConstraintOp,
    /// The right-hand side.
    pub rhs: f64,
}

/// A minimisation linear program with optional binary restrictions.
///
/// All variables are non-negative; continuous variables may carry an
/// optional upper bound, binary variables are `{0, 1}` (upper bound 1 in
/// the LP relaxation).
///
/// # Example
///
/// ```
/// use esvm_ilp::model::{ConstraintOp, LinearProgram};
/// let mut lp = LinearProgram::new();
/// let x = lp.add_var(1.0, Some(10.0));
/// let y = lp.add_binary_var(3.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 5.0)], ConstraintOp::Ge, 4.0);
/// assert_eq!(lp.num_vars(), 2);
/// assert!(lp.is_binary(y) && !lp.is_binary(x));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    objective: Vec<f64>,
    upper_bounds: Vec<Option<f64>>,
    binary: Vec<bool>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable `x ≥ 0` with objective coefficient
    /// `cost` and optional upper bound, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is not finite or the bound is negative/NaN.
    pub fn add_var(&mut self, cost: f64, upper: Option<f64>) -> VarId {
        assert!(cost.is_finite(), "objective coefficient must be finite");
        if let Some(u) = upper {
            assert!(u.is_finite() && u >= 0.0, "upper bound must be >= 0");
        }
        self.objective.push(cost);
        self.upper_bounds.push(upper);
        self.binary.push(false);
        self.objective.len() - 1
    }

    /// Adds a binary variable `x ∈ {0, 1}` with objective coefficient
    /// `cost`, returning its id.
    pub fn add_binary_var(&mut self, cost: f64) -> VarId {
        let id = self.add_var(cost, Some(1.0));
        self.binary[id] = true;
        id
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist or any
    /// coefficient / the rhs is not finite.
    pub fn add_constraint(&mut self, coeffs: Vec<(VarId, f64)>, op: ConstraintOp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        for &(v, a) in &coeffs {
            assert!(v < self.num_vars(), "unknown variable {v}");
            assert!(a.is_finite(), "coefficient must be finite");
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Upper bounds (per variable; `None` = unbounded above).
    pub fn upper_bounds(&self) -> &[Option<f64>] {
        &self.upper_bounds
    }

    /// Whether variable `v` is binary.
    pub fn is_binary(&self, v: VarId) -> bool {
        self.binary[v]
    }

    /// Ids of all binary variables.
    pub fn binary_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.binary
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(v, _)| v)
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Whether `x` satisfies every constraint and bound within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (v, &value) in x.iter().enumerate() {
            if value < -tol {
                return false;
            }
            if let Some(u) = self.upper_bounds[v] {
                if value > u + tol {
                    return false;
                }
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_a_program() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(2.0, None);
        let y = lp.add_binary_var(-1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 3.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective(), &[2.0, -1.0]);
        assert_eq!(lp.upper_bounds(), &[None, Some(1.0)]);
        assert_eq!(lp.binary_vars().collect::<Vec<_>>(), vec![y]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_rejects_unknown_var() {
        let mut lp = LinearProgram::new();
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_cost() {
        let mut lp = LinearProgram::new();
        lp.add_var(f64::NAN, None);
    }

    #[test]
    fn objective_and_feasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, Some(5.0));
        let y = lp.add_var(2.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Eq, 1.0);
        assert_eq!(lp.objective_value(&[1.0, 1.0]), 3.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 0.5], 1e-9)); // Ge violated
        assert!(!lp.is_feasible(&[0.5, 2.0], 1e-9)); // Eq violated
        assert!(!lp.is_feasible(&[6.0, 0.0], 1e-9)); // bound violated
        assert!(!lp.is_feasible(&[-0.1, 3.0], 1e-9)); // negativity
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong arity
    }

    #[test]
    fn op_display() {
        assert_eq!(ConstraintOp::Le.to_string(), "<=");
        assert_eq!(ConstraintOp::Ge.to_string(), ">=");
        assert_eq!(ConstraintOp::Eq.to_string(), "=");
    }
}
