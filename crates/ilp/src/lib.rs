//! # esvm-ilp
//!
//! Exact optimization substrate for the reproduction of *"Energy Saving
//! Virtual Machine Allocation in Cloud Computing"* (Xie et al.,
//! ICDCSW 2013).
//!
//! The paper formulates VM allocation as a boolean integer linear program
//! (Section II, Eqs. 8–14) and notes it is NP-hard. This crate implements
//! the whole stack from scratch (crate support for LP/ILP being thin):
//!
//! * [`model`] — a sparse minimisation LP/MILP description
//!   ([`LinearProgram`], [`Constraint`]);
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule ([`solve_lp`], [`LpSolution`]);
//! * [`branch_bound`] — LP-relaxation branch-and-bound over the binary
//!   variables ([`solve_milp`], [`MilpSolution`]);
//! * [`formulation`] — the paper's model built from an
//!   [`AllocationProblem`](esvm_simcore::AllocationProblem): binary
//!   `x_ij` (VM `j` on server `i`), binary `y_it` (server `i` active at
//!   `t`), continuous `z_it ≥ y_it − y_{i,t−1}` linearising the
//!   transition term `(y_it − y_{i,t−1})⁺`.
//!
//! The exact solver exists to *certify* the heuristics on small
//! instances: the integration tests compare MIEC and FFPS costs against
//! the true optimum. It is not built for scale — the paper's full
//! instances (hundreds of VMs, tens of thousands of binaries) are far out
//! of reach for any exact method, which is the paper's point.
//!
//! ## Example
//!
//! ```
//! use esvm_ilp::model::{ConstraintOp, LinearProgram};
//! use esvm_ilp::solve_milp;
//!
//! // Knapsack: min -(3a + 4b) s.t. 2a + 3b ≤ 4, a,b ∈ {0,1}.
//! let mut lp = LinearProgram::new();
//! let a = lp.add_binary_var(-3.0);
//! let b = lp.add_binary_var(-4.0);
//! lp.add_constraint(vec![(a, 2.0), (b, 3.0)], ConstraintOp::Le, 4.0);
//! let sol = solve_milp(&lp).expect("feasible");
//! assert_eq!(sol.objective.round(), -4.0); // b alone
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod formulation;
pub mod model;
pub mod simplex;

pub use branch_bound::{solve_milp, MilpError, MilpSolution};
pub use formulation::{ExactSolution, Formulation};
pub use model::{Constraint, ConstraintOp, LinearProgram, VarId};
pub use simplex::{solve_lp, LpError, LpSolution};
