//! The paper's boolean ILP (Section II, Eqs. 8–14) built from an
//! [`AllocationProblem`].
//!
//! Decision variables:
//!
//! * `x_ij ∈ {0,1}` — VM `j` allocated on server `i` (only *statically
//!   feasible* pairs are materialised: the VM's demand must fit the
//!   server's total capacity);
//! * `y_it ∈ {0,1}` — server `i` active during time unit `t`, for `t`
//!   in `[t_min, T]` (the span of all VM activity; outside it `y = 0`
//!   trivially);
//! * `z_it ∈ [0,1]` — linearisation of the transition term
//!   `(y_it − y_{i,t−1})⁺` with `y_{i,t_min−1} = 0`; since `z` has
//!   positive cost `α_i` and is only bounded below by the difference, it
//!   takes exactly `max{0, y_it − y_{i,t−1}}` at any optimum.
//!
//! Objective (Eq. 8): `min Σ W_ij x_ij + Σ P_idle,i y_it + Σ α_i z_it`.
//!
//! Constraints: CPU and memory capacity per server per time unit
//! (Eqs. 9–10), exactly-one-server per VM (Eq. 11), activity linking
//! `x_ij ≤ y_it` for `t` in the VM's duration (Eq. 12). The linking
//! constraints are implied by the capacity rows for VMs with positive
//! demand, but they tighten the LP relaxation substantially, which is
//! what makes branch-and-bound practical.

use crate::branch_bound::{solve_milp_with_budget, MilpError, MilpSolution};
use crate::model::{ConstraintOp, LinearProgram, VarId};
use esvm_simcore::{AllocationProblem, Assignment, ServerId, TimeUnit, VmId};
use std::collections::HashMap;

/// The MILP encoding of one allocation problem.
#[derive(Debug, Clone)]
pub struct Formulation<'p> {
    problem: &'p AllocationProblem,
    lp: LinearProgram,
    /// `(server, vm) → x` var.
    x: HashMap<(usize, usize), VarId>,
    /// Number of `y` variables (diagnostics).
    num_y: usize,
    /// Number of `z` variables (diagnostics).
    num_z: usize,
}

/// An exact solution: the optimal placement and its certified objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Optimal placement, indexed by VM id.
    pub placement: Vec<Option<ServerId>>,
    /// The MILP objective at the optimum (equals the audited energy of
    /// the decoded assignment).
    pub objective: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

impl ExactSolution {
    /// Reconstructs a validated [`Assignment`] from the placement.
    ///
    /// # Errors
    ///
    /// Propagates [`esvm_simcore::Error`] if the placement is invalid
    /// (cannot happen for solutions produced by [`Formulation::solve`]).
    pub fn decode<'p>(
        &self,
        problem: &'p AllocationProblem,
    ) -> esvm_simcore::Result<Assignment<'p>> {
        Assignment::from_placement(problem, &self.placement)
    }
}

impl<'p> Formulation<'p> {
    /// Builds the MILP for `problem`.
    ///
    /// Instance size is `O(n·m + n·T)` variables and
    /// `O(n·T + Σ_j n·|duration_j|)` constraints — intended for
    /// certification-scale instances (a handful of VMs and servers over a
    /// short horizon).
    pub fn new(problem: &'p AllocationProblem) -> Self {
        let mut lp = LinearProgram::new();
        let n = problem.server_count();
        let m = problem.vm_count();

        let (t_min, t_max) = time_span(problem);

        // x_ij for statically feasible pairs.
        let mut x = HashMap::new();
        for (i, server) in problem.servers().iter().enumerate() {
            for (j, vm) in problem.vms().iter().enumerate() {
                if vm.demand().fits_within(server.capacity()) {
                    let var = lp.add_binary_var(server.run_cost(vm));
                    x.insert((i, j), var);
                }
            }
        }

        // y_it and z_it.
        let mut y = HashMap::new();
        let mut z = HashMap::new();
        if m > 0 {
            for (i, server) in problem.servers().iter().enumerate() {
                for t in t_min..=t_max {
                    y.insert((i, t), lp.add_binary_var(server.power().p_idle()));
                    z.insert((i, t), lp.add_var(server.transition_cost(), Some(1.0)));
                }
            }
        }

        // Capacity constraints (Eqs. 9–10) per (i, t).
        if m > 0 {
            for (i, server) in problem.servers().iter().enumerate() {
                for t in t_min..=t_max {
                    let mut cpu_row: Vec<(VarId, f64)> = Vec::new();
                    let mut mem_row: Vec<(VarId, f64)> = Vec::new();
                    for (j, vm) in problem.vms().iter().enumerate() {
                        if vm.interval().contains(t) {
                            if let Some(&var) = x.get(&(i, j)) {
                                cpu_row.push((var, vm.demand().cpu));
                                mem_row.push((var, vm.demand().mem));
                            }
                        }
                    }
                    let y_var = y[&(i, t)];
                    if !cpu_row.is_empty() {
                        cpu_row.push((y_var, -server.capacity().cpu));
                        lp.add_constraint(cpu_row, ConstraintOp::Le, 0.0);
                        mem_row.push((y_var, -server.capacity().mem));
                        lp.add_constraint(mem_row, ConstraintOp::Le, 0.0);
                    }

                    // Transition linearisation: y_it − y_{i,t−1} ≤ z_it.
                    let z_var = z[&(i, t)];
                    let mut row = vec![(y_var, 1.0), (z_var, -1.0)];
                    if t > t_min {
                        row.push((y[&(i, t - 1)], -1.0));
                    }
                    lp.add_constraint(row, ConstraintOp::Le, 0.0);
                }
            }
        }

        // Exactly one server per VM (Eq. 11).
        for j in 0..m {
            let row: Vec<(VarId, f64)> = (0..n)
                .filter_map(|i| x.get(&(i, j)).map(|&v| (v, 1.0)))
                .collect();
            lp.add_constraint(row, ConstraintOp::Eq, 1.0);
        }

        // Linking x_ij ≤ y_it (Eq. 12).
        for (&(i, j), &x_var) in &x {
            let vm = &problem.vms()[j];
            for t in vm.interval().iter() {
                lp.add_constraint(
                    vec![(x_var, 1.0), (y[&(i, t)], -1.0)],
                    ConstraintOp::Le,
                    0.0,
                );
            }
        }

        let num_y = y.len();
        let num_z = z.len();
        Self {
            problem,
            lp,
            x,
            num_y,
            num_z,
        }
    }

    /// The underlying MILP (read-only).
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// `(x, y, z)` variable counts (diagnostics).
    pub fn var_counts(&self) -> (usize, usize, usize) {
        (self.x.len(), self.num_y, self.num_z)
    }

    /// Solves to proven optimality and decodes the placement.
    ///
    /// # Errors
    ///
    /// Any [`MilpError`] variant (an overloaded instance is
    /// [`MilpError::Infeasible`]).
    pub fn solve(&self) -> Result<ExactSolution, MilpError> {
        self.solve_with_budget(1_000_000)
    }

    /// Solves with an explicit branch-and-bound node budget.
    ///
    /// # Errors
    ///
    /// Any [`MilpError`] variant.
    pub fn solve_with_budget(&self, budget: usize) -> Result<ExactSolution, MilpError> {
        let MilpSolution {
            x: values,
            objective,
            nodes,
        } = solve_milp_with_budget(&self.lp, budget)?;

        let mut placement = vec![None; self.problem.vm_count()];
        for (&(i, j), &var) in &self.x {
            if values[var] > 0.5 {
                debug_assert!(
                    placement[j].is_none(),
                    "vm {j} assigned to two servers"
                );
                placement[j] = Some(ServerId(i as u32));
            }
        }
        debug_assert!(
            placement.iter().all(Option::is_some),
            "incomplete exact placement"
        );
        Ok(ExactSolution {
            placement,
            objective,
            nodes,
        })
    }

    /// Whether the pair `(server, vm)` was materialised as a variable.
    pub fn has_pair(&self, server: ServerId, vm: VmId) -> bool {
        self.x.contains_key(&(server.index(), vm.index()))
    }
}

/// The `[t_min, t_max]` span of VM activity (degenerate `(0, 0)` when
/// there is no VM).
fn time_span(problem: &AllocationProblem) -> (TimeUnit, TimeUnit) {
    let t_min = problem.vms().iter().map(|v| v.start()).min().unwrap_or(0);
    let t_max = problem.horizon();
    (t_min, t_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn small_problem() -> ProblemBuilder {
        ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(80.0, 200.0), 100.0)
    }

    #[test]
    fn single_vm_lands_on_cheapest_server() {
        let p = small_problem()
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .build()
            .unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        // Server 0: run = (50/4)·2·4 = 100, idle = 200, α = 60 → 360.
        // Server 1: run = (120/8)·2·4 = 120, idle = 320, α = 100 → 540.
        assert_eq!(sol.placement[0], Some(ServerId(0)));
        assert!(close(sol.objective, 360.0), "{sol:?}");
    }

    #[test]
    fn objective_matches_decoded_assignment_cost() {
        let p = small_problem()
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .vm(Resources::new(3.0, 3.0), Interval::new(3, 6))
            .vm(Resources::new(1.0, 1.0), Interval::new(9, 10))
            .build()
            .unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        let assignment = sol.decode(&p).unwrap();
        assert!(
            close(sol.objective, assignment.total_cost()),
            "milp {} vs audit {}",
            sol.objective,
            assignment.total_cost()
        );
    }

    #[test]
    fn milp_never_beats_is_matched_by_brute_force() {
        // Enumerate all placements; the MILP optimum must equal the best.
        let p = small_problem()
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .vm(Resources::new(3.0, 3.0), Interval::new(2, 5))
            .build()
            .unwrap();
        let mut best = f64::INFINITY;
        for s0 in 0..2u32 {
            for s1 in 0..2u32 {
                let placement = vec![Some(ServerId(s0)), Some(ServerId(s1))];
                if let Ok(a) = Assignment::from_placement(&p, &placement) {
                    best = best.min(a.total_cost());
                }
            }
        }
        let sol = Formulation::new(&p).solve().unwrap();
        assert!(close(sol.objective, best), "milp {} vs brute {best}", sol.objective);
    }

    #[test]
    fn switch_off_policy_emerges_from_the_milp() {
        // One server, two VMs with a long gap: cheaper to switch off
        // (α = 60 < P_idle·gap = 50·4 = 200). The MILP must choose y = 0
        // in the gap and pay a second α.
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 2))
            .vm(Resources::new(2.0, 4.0), Interval::new(7, 8))
            .build()
            .unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        let a = sol.decode(&p).unwrap();
        assert!(close(sol.objective, a.total_cost()));
        let report = a.audit().unwrap();
        assert_eq!(report.servers[0].transitions, 2);
    }

    #[test]
    fn keep_active_policy_emerges_when_alpha_is_large() {
        // Same shape but α = 500 > 200: stay active through the gap.
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 500.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 2))
            .vm(Resources::new(2.0, 4.0), Interval::new(7, 8))
            .build()
            .unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        let a = sol.decode(&p).unwrap();
        assert!(close(sol.objective, a.total_cost()));
        assert_eq!(a.audit().unwrap().servers[0].transitions, 1);
    }

    #[test]
    fn infeasible_pairs_are_not_materialised() {
        let p = small_problem()
            // Fits only server 1.
            .vm(Resources::new(6.0, 10.0), Interval::new(1, 2))
            .build()
            .unwrap();
        let f = Formulation::new(&p);
        assert!(!f.has_pair(ServerId(0), VmId(0)));
        assert!(f.has_pair(ServerId(1), VmId(0)));
        let sol = f.solve().unwrap();
        assert_eq!(sol.placement[0], Some(ServerId(1)));
    }

    #[test]
    fn capacity_conflict_forces_split() {
        let p = small_problem()
            .vm(Resources::new(3.0, 6.0), Interval::new(1, 4))
            .vm(Resources::new(3.0, 6.0), Interval::new(2, 5))
            .build()
            .unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        // 3+3 = 6 CPU exceeds server 0 (4 CPU) but fits server 1 (8 CPU):
        // both on server 1 is allowed; both on server 0 is not.
        let a = sol.decode(&p).unwrap();
        assert!(a.audit().is_ok());
        assert!(
            !(sol.placement[0] == Some(ServerId(0)) && sol.placement[1] == Some(ServerId(0)))
        );
    }

    #[test]
    fn var_counts_are_reported() {
        let p = small_problem()
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 3))
            .build()
            .unwrap();
        let f = Formulation::new(&p);
        let (nx, ny, nz) = f.var_counts();
        assert_eq!(nx, 2); // fits both servers
        assert_eq!(ny, 2 * 3); // 2 servers × t ∈ [1,3]
        assert_eq!(nz, 2 * 3);
        assert!(f.lp().num_constraints() > 0);
    }

    #[test]
    fn empty_vm_list_solves_to_zero() {
        let p = small_problem().build().unwrap();
        let sol = Formulation::new(&p).solve().unwrap();
        assert_eq!(sol.placement.len(), 0);
        assert!(close(sol.objective, 0.0));
    }
}
