//! Dense two-phase primal simplex.
//!
//! A from-scratch tableau implementation sized for the certification
//! instances this workspace solves (hundreds of rows/columns). Bland's
//! rule is used for both the entering and leaving choices, so the
//! algorithm cannot cycle; the price is a few extra iterations, which is
//! irrelevant at this scale.

use crate::model::{ConstraintOp, LinearProgram, VarId};
use std::fmt;

/// Elimination tolerance.
const EPS: f64 = 1e-9;
/// Minimum acceptable pivot magnitude; smaller pivots amplify rounding
/// error catastrophically.
const PIVOT_EPS: f64 = 1e-7;
/// Two ratios within this are treated as tied in the ratio test.
const RATIO_TIE_EPS: f64 = 1e-9;
/// Feasibility tolerance for reporting.
const FEAS_EPS: f64 = 1e-6;

/// Errors from the LP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration cap was exceeded (indicates severe numerical
    /// trouble; should not occur with Bland's rule on well-posed input).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Solves `lp` (a minimisation) to optimality, treating binary markers as
/// plain `[0, 1]` bounds (the LP relaxation).
///
/// # Errors
///
/// [`LpError::Infeasible`], [`LpError::Unbounded`], or
/// [`LpError::IterationLimit`].
///
/// # Example
///
/// ```
/// use esvm_ilp::model::{ConstraintOp, LinearProgram};
/// use esvm_ilp::simplex::solve_lp;
///
/// // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2  →  x=2? no: x+y=4 with y=2, x=2.
/// let mut lp = LinearProgram::new();
/// let x = lp.add_var(-1.0, Some(3.0));
/// let y = lp.add_var(-2.0, Some(2.0));
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
/// let sol = solve_lp(&lp)?;
/// assert!((sol.objective - (-6.0)).abs() < 1e-6);
/// # Ok::<(), esvm_ilp::LpError>(())
/// ```
pub fn solve_lp(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    Tableau::build(lp).solve(lp)
}

/// Solves `lp` with some variables additionally fixed (used by
/// branch-and-bound to impose branching decisions without rebuilding the
/// model).
pub fn solve_lp_with_fixings(
    lp: &LinearProgram,
    fixings: &[(VarId, f64)],
) -> Result<LpSolution, LpError> {
    Tableau::build_with_fixings(lp, fixings).solve(lp)
}

struct Tableau {
    /// Constraint rows, each of length `cols + 1` (last entry = rhs).
    rows: Vec<Vec<f64>>,
    /// Basis: `basis[i]` = column basic in row `i`.
    basis: Vec<usize>,
    /// Phase-2 (real) cost row, canonical w.r.t. the basis.
    cost: Vec<f64>,
    /// Number of structural variables.
    n_struct: usize,
    /// Total columns (structural + slack/surplus + artificial).
    cols: usize,
    /// Artificial column flags.
    artificial: Vec<bool>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        Self::build_with_fixings(lp, &[])
    }

    fn build_with_fixings(lp: &LinearProgram, fixings: &[(VarId, f64)]) -> Self {
        let n = lp.num_vars();

        // Collect rows as (dense coeffs over structural vars, op, rhs).
        let mut raw: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::new();
        for c in lp.constraints() {
            let mut row = vec![0.0; n];
            for &(v, a) in &c.coeffs {
                row[v] += a;
            }
            raw.push((row, c.op, c.rhs));
        }
        for (v, upper) in lp.upper_bounds().iter().enumerate() {
            if let Some(u) = upper {
                let mut row = vec![0.0; n];
                row[v] = 1.0;
                raw.push((row, ConstraintOp::Le, *u));
            }
        }
        for &(v, value) in fixings {
            let mut row = vec![0.0; n];
            row[v] = 1.0;
            raw.push((row, ConstraintOp::Eq, value));
        }

        // Normalise rhs >= 0.
        for (row, op, rhs) in &mut raw {
            if *rhs < 0.0 {
                for a in row.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *op = match *op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
        }

        // Count auxiliary columns.
        let m = raw.len();
        let mut extra = 0usize;
        for (_, op, _) in &raw {
            extra += match op {
                ConstraintOp::Le => 1,
                ConstraintOp::Ge => 2,
                ConstraintOp::Eq => 1,
            };
        }
        let cols = n + extra;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut artificial = vec![false; cols];
        let mut next = n;
        for (row, op, rhs) in raw {
            let mut full = vec![0.0; cols + 1];
            full[..n].copy_from_slice(&row);
            full[cols] = rhs;
            match op {
                ConstraintOp::Le => {
                    full[next] = 1.0; // slack
                    basis.push(next);
                    next += 1;
                }
                ConstraintOp::Ge => {
                    full[next] = -1.0; // surplus
                    next += 1;
                    full[next] = 1.0; // artificial
                    artificial[next] = true;
                    basis.push(next);
                    next += 1;
                }
                ConstraintOp::Eq => {
                    full[next] = 1.0; // artificial
                    artificial[next] = true;
                    basis.push(next);
                    next += 1;
                }
            }
            rows.push(full);
        }
        debug_assert_eq!(next, cols);

        let mut cost = vec![0.0; cols + 1];
        cost[..n].copy_from_slice(lp.objective());

        Self {
            rows,
            basis,
            cost,
            n_struct: n,
            cols,
            artificial,
        }
    }

    /// Pivots on (row, col): normalises the pivot row and eliminates the
    /// column from all other rows and from `extra_rows` (cost rows).
    fn pivot(&mut self, r: usize, c: usize, phase1_cost: &mut Option<Vec<f64>>) {
        let pivot_value = self.rows[r][c];
        debug_assert!(pivot_value.abs() > EPS);
        for a in self.rows[r].iter_mut() {
            *a /= pivot_value;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i != r && row[c].abs() > EPS {
                let factor = row[c];
                for (a, p) in row.iter_mut().zip(&pivot_row) {
                    *a -= factor * p;
                }
                row[c] = 0.0; // kill residual noise
            }
        }
        if self.cost[c].abs() > EPS {
            let factor = self.cost[c];
            for (a, p) in self.cost.iter_mut().zip(&pivot_row) {
                *a -= factor * p;
            }
            self.cost[c] = 0.0;
        }
        if let Some(c1) = phase1_cost {
            if c1[c].abs() > EPS {
                let factor = c1[c];
                for (a, p) in c1.iter_mut().zip(&pivot_row) {
                    *a -= factor * p;
                }
                c1[c] = 0.0;
            }
        }
        self.basis[r] = c;
    }

    /// Main iteration loop on the given cost row.
    ///
    /// Entering rule: Dantzig (most negative reduced cost) for speed,
    /// switching to Bland (smallest index) after a run of degenerate
    /// pivots so cycling is impossible. Leaving rule: minimum ratio;
    /// among (near-)ties, the largest pivot element for numerical
    /// stability — or the smallest basis index while in Bland mode.
    /// Pivot elements below [`PIVOT_EPS`] are never accepted.
    fn iterate(
        &mut self,
        use_phase1: bool,
        mut phase1_cost: Option<Vec<f64>>,
        iteration_cap: usize,
    ) -> Result<Option<Vec<f64>>, LpError> {
        let mut degenerate_streak = 0usize;
        for _ in 0..iteration_cap {
            let bland = degenerate_streak > 40;
            let cost_row: &[f64] = match (&phase1_cost, use_phase1) {
                (Some(c1), true) => c1,
                _ => &self.cost,
            };
            // Entering column. Artificials may not (re-)enter: in phase 1
            // they start basic, and once driven out they are done.
            let candidates = (0..self.cols)
                .filter(|&j| !self.artificial[j] && cost_row[j] < -FEAS_EPS)
                .filter(|&j| self.basis.iter().all(|&b| b != j));
            let entering = if bland {
                candidates.take(1).next()
            } else {
                candidates.min_by(|&a, &b| cost_row[a].total_cmp(&cost_row[b]))
            };
            let Some(c) = entering else {
                return Ok(phase1_cost);
            };

            // Leaving row: min ratio over sufficiently large pivots.
            let mut leave: Option<(f64, usize)> = None; // (ratio, row)
            for (i, row) in self.rows.iter().enumerate() {
                if row[c] > PIVOT_EPS {
                    let ratio = row[self.cols].max(0.0) / row[c];
                    let better = match leave {
                        None => true,
                        Some((br, bi)) => {
                            if ratio < br - RATIO_TIE_EPS {
                                true
                            } else if ratio > br + RATIO_TIE_EPS {
                                false
                            } else if bland {
                                self.basis[i] < self.basis[bi]
                            } else {
                                row[c] > self.rows[bi][c]
                            }
                        }
                    };
                    if better {
                        leave = Some((ratio, i));
                    }
                }
            }
            let Some((ratio, r)) = leave else {
                return Err(LpError::Unbounded);
            };
            if ratio <= RATIO_TIE_EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(r, c, &mut phase1_cost);

            // Divergence guard: a healthy tableau for these models stays
            // within a modest dynamic range.
            if self.rows[r][self.cols].abs() > 1e10 {
                return Err(LpError::IterationLimit);
            }
        }
        Err(LpError::IterationLimit)
    }

    fn solve(mut self, lp: &LinearProgram) -> Result<LpSolution, LpError> {
        let cap = 5000 + 200 * (self.rows.len() + self.cols);

        // Phase 1 (only if artificials exist).
        if self.artificial.iter().any(|&a| a) {
            let mut c1 = vec![0.0; self.cols + 1];
            for (j, &is_art) in self.artificial.iter().enumerate() {
                if is_art {
                    c1[j] = 1.0;
                }
            }
            // Canonicalise: artificials are basic.
            for (i, &b) in self.basis.iter().enumerate() {
                if self.artificial[b] {
                    let row = self.rows[i].clone();
                    for (a, p) in c1.iter_mut().zip(&row) {
                        *a -= p;
                    }
                }
            }
            let c1 = self.iterate(true, Some(c1), cap)?;
            let z1 = -c1.expect("phase1 cost row")[self.cols];
            if z1 > FEAS_EPS {
                return Err(LpError::Infeasible);
            }
            // Drive remaining basic artificials out where possible.
            for i in 0..self.rows.len() {
                if self.artificial[self.basis[i]] {
                    if let Some(c) = (0..self.cols)
                        .find(|&j| !self.artificial[j] && self.rows[i][j].abs() > 1e-7)
                    {
                        self.pivot(i, c, &mut None);
                    }
                    // Otherwise the row is redundant; the artificial stays
                    // basic at value ~0 and is barred from re-entering.
                }
            }
        }

        // Phase 2.
        self.iterate(false, None, cap)?;

        let mut x = vec![0.0; self.n_struct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.rows[i][self.cols].max(0.0);
            }
        }
        let objective = lp.objective_value(&x);
        Ok(LpSolution { x, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearProgram;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-3.0, None);
        let y = lp.add_var(-5.0, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, -36.0), "{s:?}");
        assert!(close(s.x[0], 2.0) && close(s.x[1], 6.0), "{s:?}");
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x ≥ 4 → (10? no) x=10,y=0? x≥4,
        // y≥0 → cheapest is x as large as possible? cost 2 < 3 so x=10,
        // y=0, z=20.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(2.0, None);
        let y = lp.add_var(3.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 10.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 4.0);
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, 20.0), "{s:?}");
        assert!(close(s.x[0], 10.0), "{s:?}");
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // min x s.t. −x ≤ −5  (i.e. x ≥ 5).
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, -1.0)], ConstraintOp::Le, -5.0);
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, 5.0), "{s:?}");
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(solve_lp(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, None);
        let y = lp.add_var(0.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(solve_lp(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn upper_bounds_are_honoured() {
        // min −x, x ≤ 2.5 → x = 2.5.
        let mut lp = LinearProgram::new();
        let _x = lp.add_var(-1.0, Some(2.5));
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, -2.5), "{s:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: several constraints active at the optimum.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-0.75, None);
        let y = lp.add_var(150.0, None);
        let z = lp.add_var(-0.02, None);
        let w = lp.add_var(6.0, None);
        lp.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(z, 1.0)], ConstraintOp::Le, 1.0);
        // Beale's cycling example; Bland's rule must terminate: z* = −0.05.
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, -0.05), "{s:?}");
    }

    #[test]
    fn zero_variable_program() {
        let lp = LinearProgram::new();
        let s = solve_lp(&lp).unwrap();
        assert_eq!(s.x.len(), 0);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // x + y = 2 stated twice.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, None);
        let y = lp.add_var(1.0, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert!(close(s.objective, 2.0), "{s:?}");
    }

    #[test]
    fn fixings_are_respected() {
        // min x + y s.t. x + y ≥ 1, fix x = 0.25.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, Some(1.0));
        let y = lp.add_var(1.0, Some(1.0));
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        let s = solve_lp_with_fixings(&lp, &[(x, 0.25)]).unwrap();
        assert!(close(s.x[0], 0.25), "{s:?}");
        assert!(close(s.objective, 1.0), "{s:?}");
    }

    #[test]
    fn infeasible_fixing_is_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, Some(1.0));
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(
            solve_lp_with_fixings(&lp, &[(x, 0.0)]).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn solution_is_feasible_for_original_model() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, Some(4.0));
        let y = lp.add_var(-2.0, Some(3.0));
        let z = lp.add_var(0.5, None);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0), (z, -1.0)], ConstraintOp::Le, 5.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0), (z, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert!(lp.is_feasible(&s.x, 1e-6), "{s:?}");
    }
}
