//! Branch-and-bound over the binary variables of a MILP.
//!
//! Depth-first search on the LP relaxation: at each node the relaxation
//! is solved with the branching decisions imposed as fixings
//! ([`solve_lp_with_fixings`]); a node is pruned when its bound meets the
//! incumbent, its relaxation is infeasible, or its relaxation is already
//! integral. Branching picks the most fractional binary variable.

use crate::model::{LinearProgram, VarId};
use crate::simplex::{solve_lp_with_fixings, LpError};
use std::fmt;

/// Integrality tolerance: a value within this of 0/1 counts as integral.
const INT_EPS: f64 = 1e-6;

/// Errors from the MILP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MilpError {
    /// No integral feasible point exists.
    Infeasible,
    /// The relaxation at the root is unbounded.
    Unbounded,
    /// The node budget was exhausted before the tree was closed.
    NodeLimit,
    /// The LP solver failed numerically.
    Numerical,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "milp is infeasible"),
            MilpError::Unbounded => write!(f, "milp relaxation is unbounded"),
            MilpError::NodeLimit => write!(f, "branch-and-bound node limit exceeded"),
            MilpError::Numerical => write!(f, "lp solver failed numerically"),
        }
    }
}

impl std::error::Error for MilpError {}

/// An optimal MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Optimal variable values (binaries are exactly 0.0 or 1.0).
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Solves the MILP to proven optimality with the default node budget
/// (1 million nodes — far beyond anything the certification instances
/// need).
///
/// # Errors
///
/// Any [`MilpError`] variant.
pub fn solve_milp(lp: &LinearProgram) -> Result<MilpSolution, MilpError> {
    solve_milp_with_budget(lp, 1_000_000)
}

/// Solves the MILP with an explicit node budget.
///
/// # Errors
///
/// Any [`MilpError`] variant; [`MilpError::NodeLimit`] when the budget
/// runs out with the tree still open.
pub fn solve_milp_with_budget(
    lp: &LinearProgram,
    node_budget: usize,
) -> Result<MilpSolution, MilpError> {
    let mut solver = BranchBound {
        lp,
        incumbent: None,
        nodes: 0,
        budget: node_budget,
    };
    match solver.explore(&mut Vec::new()) {
        Ok(()) => {}
        Err(MilpError::NodeLimit) if solver.incumbent.is_none() => {
            return Err(MilpError::NodeLimit)
        }
        Err(MilpError::NodeLimit) => return Err(MilpError::NodeLimit),
        Err(e) => return Err(e),
    }
    let (x, objective) = solver.incumbent.ok_or(MilpError::Infeasible)?;
    Ok(MilpSolution {
        x,
        objective,
        nodes: solver.nodes,
    })
}

struct BranchBound<'a> {
    lp: &'a LinearProgram,
    incumbent: Option<(Vec<f64>, f64)>,
    nodes: usize,
    budget: usize,
}

impl BranchBound<'_> {
    /// Picks the binary variable whose relaxed value is farthest from an
    /// integer.
    fn most_fractional(&self, x: &[f64]) -> Option<(VarId, f64)> {
        self.lp
            .binary_vars()
            .map(|v| (v, x[v]))
            .filter(|&(_, val)| val > INT_EPS && val < 1.0 - INT_EPS)
            .max_by(|a, b| {
                let fa = (a.1 - 0.5).abs();
                let fb = (b.1 - 0.5).abs();
                fb.total_cmp(&fa) // max_by keyed on closeness to 0.5
            })
    }

    fn explore(&mut self, fixings: &mut Vec<(VarId, f64)>) -> Result<(), MilpError> {
        if self.nodes >= self.budget {
            return Err(MilpError::NodeLimit);
        }
        self.nodes += 1;

        let relaxed = match solve_lp_with_fixings(self.lp, fixings) {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Ok(()), // prune
            Err(LpError::Unbounded) => {
                // Unbounded at the root means the MILP is unbounded; at a
                // deeper node with binaries fixed it still means the
                // continuous part is unbounded.
                return Err(MilpError::Unbounded);
            }
            Err(LpError::IterationLimit) => return Err(MilpError::Numerical),
        };

        // Bound pruning.
        if let Some((_, best)) = &self.incumbent {
            if relaxed.objective >= *best - 1e-9 {
                return Ok(());
            }
        }

        match self.most_fractional(&relaxed.x) {
            None => {
                // Integral: round binaries exactly and accept.
                let mut x = relaxed.x;
                for v in self.lp.binary_vars() {
                    x[v] = if x[v] >= 0.5 { 1.0 } else { 0.0 };
                }
                let objective = self.lp.objective_value(&x);
                let improves = self
                    .incumbent
                    .as_ref()
                    .is_none_or(|(_, best)| objective < *best);
                if improves {
                    self.incumbent = Some((x, objective));
                }
                Ok(())
            }
            Some((v, value)) => {
                // Explore the "nearer" branch first for faster incumbents.
                let order = if value >= 0.5 { [1.0, 0.0] } else { [0.0, 1.0] };
                for fix in order {
                    fixings.push((v, fix));
                    let r = self.explore(fixings);
                    fixings.pop();
                    r?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, LinearProgram};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    /// Brute-force reference over all binary combinations.
    fn brute_force(lp: &LinearProgram) -> Option<f64> {
        let binaries: Vec<VarId> = lp.binary_vars().collect();
        assert!(
            lp.num_vars() == binaries.len(),
            "reference only handles pure binary programs"
        );
        let mut best: Option<f64> = None;
        for mask in 0..(1u32 << binaries.len()) {
            let x: Vec<f64> = (0..binaries.len())
                .map(|k| f64::from((mask >> k) & 1))
                .collect();
            if lp.is_feasible(&x, 1e-9) {
                let obj = lp.objective_value(&x);
                if best.is_none_or(|b| obj < b) {
                    best = Some(obj);
                }
            }
        }
        best
    }

    fn knapsack(values: &[f64], weights: &[f64], capacity: f64) -> LinearProgram {
        let mut lp = LinearProgram::new();
        let vars: Vec<VarId> = values.iter().map(|&v| lp.add_binary_var(-v)).collect();
        lp.add_constraint(
            vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(),
            ConstraintOp::Le,
            capacity,
        );
        lp
    }

    #[test]
    fn solves_small_knapsack() {
        let lp = knapsack(&[10.0, 13.0, 7.0, 8.0], &[3.0, 4.0, 2.0, 3.0], 7.0);
        let sol = solve_milp(&lp).unwrap();
        assert!(close(sol.objective, brute_force(&lp).unwrap()), "{sol:?}");
    }

    #[test]
    fn matches_brute_force_on_random_knapsacks() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(3..9);
            let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..20.0)).collect();
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
            let capacity = rng.gen_range(5.0..25.0);
            let lp = knapsack(&values, &weights, capacity);
            let sol = solve_milp(&lp).unwrap();
            let reference = brute_force(&lp).unwrap();
            assert!(
                close(sol.objective, reference),
                "trial {trial}: got {} expected {reference}",
                sol.objective
            );
        }
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 jobs to 2 machines: min cost, each job exactly once.
        // costs: j0: (1, 5), j1: (4, 2) → 1 + 2 = 3.
        let mut lp = LinearProgram::new();
        let x00 = lp.add_binary_var(1.0);
        let x01 = lp.add_binary_var(5.0);
        let x10 = lp.add_binary_var(4.0);
        let x11 = lp.add_binary_var(2.0);
        lp.add_constraint(vec![(x00, 1.0), (x01, 1.0)], ConstraintOp::Eq, 1.0);
        lp.add_constraint(vec![(x10, 1.0), (x11, 1.0)], ConstraintOp::Eq, 1.0);
        let sol = solve_milp(&lp).unwrap();
        assert!(close(sol.objective, 3.0), "{sol:?}");
        assert!(close(sol.x[x00], 1.0) && close(sol.x[x11], 1.0));
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min z + 10 y  s.t. z ≥ 3 − 5y, z ≥ 0, y binary.
        // y=0 → z=3 cost 3; y=1 → z=0 cost 10. Optimal 3.
        let mut lp = LinearProgram::new();
        let z = lp.add_var(1.0, None);
        let y = lp.add_binary_var(10.0);
        lp.add_constraint(vec![(z, 1.0), (y, 5.0)], ConstraintOp::Ge, 3.0);
        let sol = solve_milp(&lp).unwrap();
        assert!(close(sol.objective, 3.0), "{sol:?}");
        assert!(close(sol.x[y], 0.0));
    }

    #[test]
    fn detects_infeasible_milp() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(1.0);
        let b = lp.add_binary_var(1.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 3.0);
        assert_eq!(solve_milp(&lp).unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn fractional_lp_optimum_forces_branching() {
        // LP relaxation of: max x1 + x2, 2x1 + 2x2 ≤ 3 gives 1.5;
        // integral optimum is 1.
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-1.0);
        let b = lp.add_binary_var(-1.0);
        lp.add_constraint(vec![(a, 2.0), (b, 2.0)], ConstraintOp::Le, 3.0);
        let sol = solve_milp(&lp).unwrap();
        assert!(close(sol.objective, -1.0), "{sol:?}");
        assert!(sol.nodes > 1, "must have branched: {sol:?}");
    }

    #[test]
    fn node_limit_is_enforced() {
        let lp = knapsack(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0; 5], 2.5);
        assert_eq!(
            solve_milp_with_budget(&lp, 1).unwrap_err(),
            MilpError::NodeLimit
        );
    }

    #[test]
    fn binaries_in_solution_are_exact() {
        let lp = knapsack(&[5.0, 4.0, 3.0], &[2.0, 3.0, 1.0], 3.0);
        let sol = solve_milp(&lp).unwrap();
        for v in lp.binary_vars() {
            assert!(sol.x[v] == 0.0 || sol.x[v] == 1.0, "{sol:?}");
        }
        assert!(lp.is_feasible(&sol.x, 1e-7));
    }
}
