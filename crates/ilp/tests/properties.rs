//! Property-based tests of the LP/MILP solvers against naive reference
//! evaluations.

use esvm_ilp::model::{ConstraintOp, LinearProgram};
use esvm_ilp::{solve_lp, solve_milp, LpError};
use proptest::prelude::*;

/// A random small pure-binary minimisation with ≤ constraints
/// (guaranteed feasible: x = 0 satisfies every `≤ b`, `b ≥ 0`).
fn arb_binary_program() -> impl Strategy<Value = LinearProgram> {
    let n_vars = 2usize..=7;
    n_vars.prop_flat_map(|n| {
        let costs = proptest::collection::vec(-10i32..=10, n);
        let constraint = (
            proptest::collection::vec(0u32..=5, n),
            1u32..=12, // rhs ≥ 1
        );
        let constraints = proptest::collection::vec(constraint, 0..=4);
        (costs, constraints).prop_map(move |(costs, constraints)| {
            let mut lp = LinearProgram::new();
            let vars: Vec<_> = costs
                .iter()
                .map(|&c| lp.add_binary_var(f64::from(c)))
                .collect();
            for (coeffs, rhs) in constraints {
                let row: Vec<_> = vars
                    .iter()
                    .zip(&coeffs)
                    .filter(|(_, &a)| a > 0)
                    .map(|(&v, &a)| (v, f64::from(a)))
                    .collect();
                if !row.is_empty() {
                    lp.add_constraint(row, ConstraintOp::Le, f64::from(rhs));
                }
            }
            lp
        })
    })
}

/// Exhaustive reference optimum over all binary points.
fn brute_force(lp: &LinearProgram) -> Option<f64> {
    let n = lp.num_vars();
    let mut best: Option<f64> = None;
    for mask in 0..(1u32 << n) {
        let x: Vec<f64> = (0..n).map(|k| f64::from((mask >> k) & 1)).collect();
        if lp.is_feasible(&x, 1e-9) {
            let obj = lp.objective_value(&x);
            if best.is_none_or(|b| obj < b) {
                best = Some(obj);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Branch-and-bound equals exhaustive enumeration on random binary
    /// programs.
    #[test]
    fn milp_matches_brute_force(lp in arb_binary_program()) {
        let reference = brute_force(&lp).expect("x = 0 is always feasible");
        let sol = solve_milp(&lp).expect("feasible");
        prop_assert!(
            (sol.objective - reference).abs() < 1e-6,
            "milp {} vs brute {}",
            sol.objective,
            reference
        );
        prop_assert!(lp.is_feasible(&sol.x, 1e-6));
        for v in lp.binary_vars() {
            prop_assert!(sol.x[v] == 0.0 || sol.x[v] == 1.0);
        }
    }

    /// The LP relaxation is a valid lower bound on the MILP optimum.
    #[test]
    fn relaxation_bounds_milp(lp in arb_binary_program()) {
        let relaxed = solve_lp(&lp).expect("relaxation feasible");
        let integral = solve_milp(&lp).expect("milp feasible");
        prop_assert!(
            relaxed.objective <= integral.objective + 1e-6,
            "relaxation {} above milp {}",
            relaxed.objective,
            integral.objective
        );
        prop_assert!(lp.is_feasible(&relaxed.x, 1e-6));
    }

    /// The LP solution is never beaten by any binary point (sanity on a
    /// dense sample of the vertex set for small n).
    #[test]
    fn lp_beats_every_binary_point(lp in arb_binary_program()) {
        let relaxed = solve_lp(&lp).expect("feasible");
        let n = lp.num_vars();
        for mask in 0..(1u32 << n) {
            let x: Vec<f64> = (0..n).map(|k| f64::from((mask >> k) & 1)).collect();
            if lp.is_feasible(&x, 1e-9) {
                prop_assert!(relaxed.objective <= lp.objective_value(&x) + 1e-6);
            }
        }
    }

    /// Infeasibility is detected reliably: adding contradictory
    /// constraints to any program flips the verdict.
    #[test]
    fn contradiction_is_infeasible(mut lp in arb_binary_program()) {
        let v = 0; // first variable exists (n ≥ 2)
        lp.add_constraint(vec![(v, 1.0)], ConstraintOp::Ge, 0.75);
        lp.add_constraint(vec![(v, 1.0)], ConstraintOp::Le, 0.25);
        prop_assert_eq!(solve_lp(&lp).unwrap_err(), LpError::Infeasible);
    }
}

/// Random tiny allocation instances: the Section II formulation solved
/// to optimality must lower-bound the audited cost of any valid
/// placement, and its decoded assignment must audit to its objective.
mod formulation_properties {
    use esvm_ilp::Formulation;
    use esvm_simcore::{
        AllocationProblem, Assignment, Interval, PowerModel, ProblemBuilder, Resources, ServerId,
    };
    use proptest::prelude::*;

    fn arb_tiny_problem() -> impl Strategy<Value = AllocationProblem> {
        let server = (2u32..=8, 2u32..=8, 1u32..=10, 1u32..=10, 0u32..=30);
        let vm = (1u32..=4, 1u32..=4, 1u32..=8, 1u32..=5);
        (
            proptest::collection::vec(server, 1..=2),
            proptest::collection::vec(vm, 1..=3),
        )
            .prop_map(|(servers, vms)| {
                let mut b = ProblemBuilder::new().server(
                    Resources::new(8.0, 8.0),
                    PowerModel::new(6.0, 20.0),
                    9.0,
                );
                for (cpu, mem, idle, dynamic, alpha) in servers {
                    b = b.server(
                        Resources::new(f64::from(cpu), f64::from(mem)),
                        PowerModel::new(f64::from(idle), f64::from(idle + dynamic)),
                        f64::from(alpha),
                    );
                }
                for (cpu, mem, start, len) in vms {
                    b = b.vm(
                        Resources::new(f64::from(cpu.min(8)), f64::from(mem.min(8))),
                        Interval::with_len(start, len),
                    );
                }
                b.build().expect("valid by construction")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn milp_lower_bounds_every_valid_placement(problem in arb_tiny_problem()) {
            let exact = Formulation::new(&problem)
                .solve()
                .expect("instance is feasible by construction");
            // Decoded assignment audits to the MILP objective.
            let decoded = exact.decode(&problem).expect("decode");
            prop_assert!((decoded.total_cost() - exact.objective).abs() < 1e-6);

            // Exhaustively enumerate placements: none beats the optimum,
            // and the best equals it.
            let n = problem.server_count() as u32;
            let m = problem.vm_count();
            let mut best = f64::INFINITY;
            let mut stack = vec![0u32; m];
            'outer: loop {
                let placement: Vec<Option<ServerId>> =
                    stack.iter().map(|&s| Some(ServerId(s))).collect();
                if let Ok(a) = Assignment::from_placement(&problem, &placement) {
                    let cost = a.total_cost();
                    prop_assert!(cost >= exact.objective - 1e-6);
                    best = best.min(cost);
                }
                for digit in stack.iter_mut() {
                    *digit += 1;
                    if *digit < n {
                        continue 'outer;
                    }
                    *digit = 0;
                }
                break;
            }
            prop_assert!((best - exact.objective).abs() < 1e-6,
                "brute {best} vs milp {}", exact.objective);
        }
    }
}
