//! Round-trip and adversarial property tests for the ESVT binary
//! columnar trace format.
//!
//! The contract mirrors `trace_fuzz.rs` for the text format: a valid
//! instance survives text → ESVT → text *bit for bit*, and any hostile
//! byte stream — truncated, bit-flipped, re-stamped — is rejected with
//! a descriptive typed [`TraceError`], never a panic.

use esvm_workload::trace::TraceError;
use esvm_workload::{catalog, esvt, trace, WorkloadConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..=60,
        1usize..=12,
        1u32..=12, // interarrival ×2 (0.5 steps)
        1u32..=24, // duration ×2
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(vms, servers, ia2, dur2, std_vms, small)| {
            // With all nine VM types the fleet needs a type-4/5 server;
            // round-robin typing guarantees one from 5 servers up.
            let servers = if std_vms { servers } else { servers.max(5) };
            let mut c = WorkloadConfig::new(vms, servers)
                .mean_interarrival(f64::from(ia2) * 0.5)
                .mean_duration(f64::from(dur2) * 0.5);
            if std_vms {
                c = c.vm_types(catalog::standard_vm_types());
            }
            if small && std_vms {
                c = c.server_types(catalog::server_types_1_3());
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// text → problem → ESVT → problem → text is the identity on the
    /// rendered text, for arbitrary workloads and block lengths. The
    /// text format is the human-auditable ground truth, so byte
    /// equality there means the columnar encoding loses nothing.
    #[test]
    fn esvt_round_trip_preserves_the_text_rendering(
        config in arb_config(),
        seed in 0u64..1000,
        block_len in 1usize..700,
    ) {
        let problem = match config.generate(seed) {
            Ok(p) => p,
            // Infeasible parameter corners are the generator's concern,
            // not the codec's.
            Err(_) => return Ok(()),
        };
        let text = trace::to_text(&problem);
        let bytes = esvt::to_esvt_with_block_len(&problem, block_len);
        let back = esvt::from_esvt(&bytes).expect("decode succeeds");
        prop_assert_eq!(text, trace::to_text(&back));
    }

    /// Every strict prefix of a valid ESVT file fails with a typed
    /// error — never a panic, never a silent partial decode.
    #[test]
    fn truncated_esvt_never_panics(
        seed in 0u64..50,
        cut in 0usize..100_000,
    ) {
        let problem = WorkloadConfig::new(24, 8)
            .generate(seed)
            .expect("generation is feasible");
        let bytes = esvt::to_esvt_with_block_len(&problem, 7);
        let cut = cut % bytes.len();
        match esvt::from_esvt(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "prefix of {cut} bytes decoded"),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// A single flipped bit anywhere in the file is always rejected
    /// (or, in the rare case the flip lands in dead varint headroom,
    /// still decodes to the identical instance — never to a different
    /// one).
    #[test]
    fn bit_flips_never_panic_and_never_alter_the_instance(
        seed in 0u64..50,
        byte in 0usize..100_000,
        bit in 0u32..8,
    ) {
        let problem = WorkloadConfig::new(16, 6)
            .generate(seed)
            .expect("generation is feasible");
        let text = trace::to_text(&problem);
        let mut bytes = esvt::to_esvt_with_block_len(&problem, 5);
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        match esvt::from_esvt(&bytes) {
            Ok(back) => prop_assert_eq!(&text, &trace::to_text(&back)),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

fn sample_bytes() -> Vec<u8> {
    let problem = WorkloadConfig::new(32, 8)
        .generate(11)
        .expect("generation is feasible");
    esvt::to_esvt_with_block_len(&problem, 8)
}

#[test]
fn bad_magic_is_typed() {
    let mut bytes = sample_bytes();
    bytes[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        esvt::from_esvt(&bytes),
        Err(TraceError::BadMagic)
    ));
}

#[test]
fn wrong_version_is_typed() {
    let mut bytes = sample_bytes();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    assert!(matches!(
        esvt::from_esvt(&bytes),
        Err(TraceError::BadVersion(99))
    ));
}

#[test]
fn empty_and_tiny_inputs_are_truncation_errors() {
    for len in 0..4 {
        let bytes = vec![b'E'; len];
        assert!(
            matches!(esvt::from_esvt(&bytes), Err(TraceError::Truncated { .. })),
            "length {len}"
        );
    }
}

#[test]
fn server_section_corruption_is_a_checksum_mismatch() {
    let mut bytes = sample_bytes();
    // The server payload starts right after magic + version + flags +
    // the block-length varint and the server-count varint; flipping a
    // capacity byte there must trip the section checksum.
    let offset = 4 + 2 + 2 + 2; // block_len and count are short varints
    bytes[offset + 3] ^= 0xFF;
    match esvt::from_esvt(&bytes) {
        Err(TraceError::ChecksumMismatch { .. }) | Err(TraceError::Corrupt { .. }) => {}
        other => panic!("expected checksum/corrupt error, got {other:?}"),
    }
}

#[test]
fn vm_payload_corruption_is_a_checksum_mismatch_or_corrupt() {
    let bytes = sample_bytes();
    // Flip a byte deep in the second half of the file (VM blocks) and
    // require a typed rejection; sweep a window so the test does not
    // depend on the exact layout.
    let start = bytes.len() / 2;
    let mut rejected = 0;
    for i in start..(start + 64).min(bytes.len()) {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x55;
        match esvt::from_esvt(&mutated) {
            Err(
                TraceError::ChecksumMismatch { .. }
                | TraceError::Corrupt { .. }
                | TraceError::Truncated { .. }
                | TraceError::Invalid(_),
            ) => rejected += 1,
            Err(e) => panic!("unexpected error kind: {e:?}"),
            // A flip in varint headroom can be harmless; tolerated.
            Ok(_) => {}
        }
    }
    assert!(rejected > 0, "no mutation in the VM section was detected");
}

#[test]
fn streaming_reader_detects_mid_file_truncation() {
    let problem = WorkloadConfig::new(64, 8)
        .generate(3)
        .expect("generation is feasible");
    let bytes = esvt::to_esvt_with_block_len(&problem, 4);
    let cut = bytes.len() - bytes.len() / 4;
    let mut reader = esvt::TraceReader::new(std::io::Cursor::new(&bytes[..cut]))
        .expect("header region is intact");
    let mut buf = Vec::new();
    let result = loop {
        match reader.next_batch_into(&mut buf) {
            Ok(Some(_)) => continue,
            other => break other,
        }
    };
    assert!(
        matches!(result, Err(TraceError::Truncated { .. })),
        "expected truncation, got {result:?}"
    );
}
