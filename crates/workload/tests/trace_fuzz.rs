//! Adversarial property tests for the trace parser.
//!
//! A hardened parser has exactly two behaviours on hostile input:
//! accept a valid instance, or return a descriptive typed error. These
//! tests mutate well-formed traces — corrupted fields, truncation,
//! duplicated records, reordered bytes — and assert the parser never
//! panics and every rejection renders a non-empty, line-anchored
//! message.

use esvm_workload::{catalog, trace, WorkloadConfig};
use proptest::prelude::*;

/// Garbage values a corrupted field can take, including the ones that
/// historically reached `Resources::new`/`PowerModel::new` asserts.
const GARBAGE: [&str; 10] = [
    "NaN", "-NaN", "inf", "-inf", "-1", "1e999", "0x10", "", "foo", "1.5.3",
];

fn mutate(text: &str, line: usize, field: usize, garbage: usize, mode: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_owned();
    }
    let line = line % lines.len();
    match mode % 4 {
        // Replace one comma-separated field with garbage.
        0 => {
            let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
            let mut fields: Vec<String> = lines[line].split(',').map(str::to_owned).collect();
            let field = field % fields.len();
            fields[field] = GARBAGE[garbage % GARBAGE.len()].to_owned();
            out[line] = fields.join(",");
            out.join("\n")
        }
        // Truncate mid-line.
        1 => {
            let mut out: Vec<String> =
                lines[..line].iter().map(|s| (*s).to_owned()).collect();
            out.push(lines[line][..lines[line].len() / 2].to_owned());
            out.join("\n")
        }
        // Duplicate a line verbatim (duplicate-id injection).
        2 => {
            let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
            out.insert(line, lines[line].to_owned());
            out.join("\n")
        }
        // Delete a line (dangling sections, missing headers).
        _ => {
            let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
            out.remove(line);
            out.join("\n")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single mutation of a valid trace either still parses or
    /// fails with a descriptive error — never a panic.
    #[test]
    fn mutated_traces_never_panic(
        seed in 0u64..50,
        line in 0usize..10_000,
        field in 0usize..8,
        garbage in 0usize..GARBAGE.len(),
        mode in 0usize..4,
    ) {
        let problem = WorkloadConfig::new(8, 4)
            .vm_types(catalog::standard_vm_types())
            .generate(seed)
            .expect("generation is feasible");
        let text = trace::to_text(&problem);
        let corrupted = mutate(&text, line, field, garbage, mode);
        match trace::from_text(&corrupted) {
            Ok(parsed) => {
                // Mutations that happen to keep the trace valid must
                // still produce a well-formed instance.
                prop_assert!(parsed.server_count() >= 1);
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty(), "error must describe the problem");
            }
        }
    }

    /// Stacked mutations (up to 4) behave the same.
    #[test]
    fn repeatedly_mutated_traces_never_panic(
        seed in 0u64..50,
        edits in proptest::collection::vec(
            (0usize..10_000, 0usize..8, 0usize..GARBAGE.len(), 0usize..4),
            1..5,
        ),
    ) {
        let problem = WorkloadConfig::new(6, 3)
            .vm_types(catalog::standard_vm_types())
            .generate(seed)
            .expect("generation is feasible");
        let mut text = trace::to_text(&problem);
        for &(line, field, garbage, mode) in &edits {
            text = mutate(&text, line, field, garbage, mode);
        }
        if let Err(e) = trace::from_text(&text) {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}
