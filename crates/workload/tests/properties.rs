//! Property-based tests of workload generation and the trace format.

use esvm_workload::{catalog, trace, WorkloadConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..=60,          // vms
        1usize..=30,          // servers
        1u32..=20,            // interarrival ×2 (0.5 steps)
        1u32..=20,            // duration ×2
        1u32..=6,             // transition ×2
        proptest::bool::ANY,  // standard only?
    )
        .prop_map(|(vms, servers, ia2, dur2, tr2, standard)| {
            // With all nine VM types the fleet needs at least one server
            // of type 4 or 5 (the m2.4xlarge demand fits nothing
            // smaller), i.e. at least 4 servers under round-robin typing.
            let servers = if standard { servers } else { servers.max(5) };
            let mut cfg = WorkloadConfig::new(vms, servers)
                .mean_interarrival(f64::from(ia2) * 0.5)
                .mean_duration(f64::from(dur2) * 0.5)
                .transition_time(f64::from(tr2) * 0.5);
            if standard {
                cfg = cfg.vm_types(catalog::standard_vm_types());
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generation is deterministic per seed, honours the requested
    /// counts, draws demands from the catalog, and produces ascending
    /// integer arrival times ≥ 1.
    #[test]
    fn generated_instances_are_well_formed(cfg in arb_config(), seed in 0u64..500) {
        let a = cfg.generate(seed).expect("valid");
        let b = cfg.generate(seed).expect("valid");
        prop_assert_eq!(a.vms(), b.vms());
        prop_assert_eq!(a.servers(), b.servers());

        prop_assert_eq!(a.vm_count(), cfg.vm_count_value());
        prop_assert_eq!(a.server_count(), cfg.server_count_value());
        for w in a.vms().windows(2) {
            prop_assert!(w[0].start() <= w[1].start());
        }
        for vm in a.vms() {
            prop_assert!(vm.start() >= 1);
            prop_assert!(vm.duration() >= 1);
            prop_assert!(
                catalog::vm_types().iter().any(|t| t.demand() == vm.demand()),
                "demand {} not in catalog",
                vm.demand()
            );
        }
        for (i, s) in a.servers().iter().enumerate() {
            let t = &catalog::server_types()[i % catalog::server_types().len()];
            prop_assert_eq!(s.capacity(), t.capacity());
            prop_assert!(
                (s.transition_cost() - t.p_peak * cfg.transition_time_value()).abs() < 1e-9
            );
        }
    }

    /// Every generated instance survives a trace round trip bit-exactly.
    #[test]
    fn traces_round_trip(cfg in arb_config(), seed in 0u64..500) {
        let p = cfg.generate(seed).expect("valid");
        let q = trace::from_text(&trace::to_text(&p)).expect("parse");
        prop_assert_eq!(p.vms(), q.vms());
        prop_assert_eq!(p.servers(), q.servers());
    }

    /// The offered-load statistic is consistent with first principles.
    #[test]
    fn offered_load_matches_first_principles(cfg in arb_config(), seed in 0u64..100) {
        let p = cfg.generate(seed).expect("valid");
        if p.vm_count() == 0 || p.horizon() == 0 {
            return Ok(());
        }
        let stats = p.stats();
        let cpu_time: f64 = p.vms().iter().map(|v| v.demand().cpu * v.duration() as f64).sum();
        let cap: f64 = p.servers().iter().map(|s| s.capacity().cpu).sum();
        let expected = cpu_time / (cap * p.horizon() as f64);
        prop_assert!((stats.offered_cpu_load - expected).abs() < 1e-9);
    }
}
