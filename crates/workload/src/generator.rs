//! Seeded workload generation (Section IV-B).

use crate::arrivals::ArrivalModel;
use crate::catalog::{self, ServerType, VmType};
use crate::dist::Exponential;
use crate::esvt::EsvtWriter;
use crate::trace::TraceError;
use esvm_simcore::{AllocationProblem, Interval, ServerSpec, Vm, VmId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Errors raised during workload generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GenerateError {
    /// The VM or server type list is empty.
    EmptyCatalog,
    /// The VM type weights have the wrong arity, contain negative or
    /// non-finite values, or sum to zero.
    BadWeights,
    /// The generated instance is structurally invalid (e.g. a VM type
    /// that fits no configured server type).
    Invalid(esvm_simcore::Error),
    /// Writing a streamed trace failed.
    Trace(TraceError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::EmptyCatalog => write!(f, "vm and server type lists must be non-empty"),
            GenerateError::BadWeights => {
                write!(f, "vm type weights must be non-negative, finite, match the catalog arity and not all be zero")
            }
            GenerateError::Invalid(e) => write!(f, "generated instance is invalid: {e}"),
            GenerateError::Trace(e) => write!(f, "streamed trace write failed: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenerateError::Invalid(e) => Some(e),
            GenerateError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for GenerateError {
    fn from(e: TraceError) -> Self {
        GenerateError::Trace(e)
    }
}

impl From<esvm_simcore::Error> for GenerateError {
    fn from(e: esvm_simcore::Error) -> Self {
        GenerateError::Invalid(e)
    }
}

/// Configuration of one synthetic workload, mirroring Section IV-B.
///
/// Defaults (overridable with the builder methods) follow Section IV-C:
/// mean inter-arrival 4 units, mean duration 5 units, transition time
/// 1 unit, all nine VM types, all five server types. Server types are
/// assigned to the fleet round-robin so the mix is as even as possible.
///
/// # Example
///
/// ```
/// use esvm_workload::{catalog, WorkloadConfig};
/// let p = WorkloadConfig::new(200, 100)
///     .mean_interarrival(2.0)
///     .vm_types(catalog::standard_vm_types())
///     .server_types(catalog::server_types_1_3())
///     .generate(7)?;
/// assert_eq!(p.vm_count(), 200);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadConfig {
    vm_count: usize,
    server_count: usize,
    mean_interarrival: f64,
    mean_duration: f64,
    transition_time: f64,
    vm_types: Vec<VmType>,
    vm_type_weights: Option<Vec<f64>>,
    server_types: Vec<ServerType>,
    arrivals: Option<ArrivalModel>,
}

impl WorkloadConfig {
    /// Creates a configuration for `vm_count` VMs on `server_count`
    /// servers with the paper's default parameters.
    pub fn new(vm_count: usize, server_count: usize) -> Self {
        Self {
            vm_count,
            server_count,
            mean_interarrival: 4.0,
            mean_duration: 5.0,
            transition_time: 1.0,
            vm_types: catalog::vm_types().to_vec(),
            vm_type_weights: None,
            server_types: catalog::server_types().to_vec(),
            arrivals: None,
        }
    }

    /// Overrides the server count (used by capacity planning sweeps).
    pub fn with_server_count(mut self, servers: usize) -> Self {
        self.server_count = servers;
        self
    }

    /// Sets the mean inter-arrival time (time units); paper sweep:
    /// 0.5–10.
    pub fn mean_interarrival(mut self, mean: f64) -> Self {
        self.mean_interarrival = mean;
        self
    }

    /// Sets the mean VM duration (time units); paper values: 2, 5, 10.
    pub fn mean_duration(mut self, mean: f64) -> Self {
        self.mean_duration = mean;
        self
    }

    /// Sets the server transition time (time units); paper range:
    /// 0.5–3 (30 s – 3 min at 1-minute units). `α_i = P_peak_i × time`.
    pub fn transition_time(mut self, time: f64) -> Self {
        self.transition_time = time;
        self
    }

    /// Overrides the arrival process (default: the paper's homogeneous
    /// Poisson stream at the configured mean inter-arrival time).
    pub fn arrivals(mut self, model: ArrivalModel) -> Self {
        self.arrivals = Some(model);
        self
    }

    /// Restricts the VM type catalog.
    pub fn vm_types(mut self, types: Vec<VmType>) -> Self {
        self.vm_types = types;
        self
    }

    /// Weights the VM type draw (default: uniform, the paper's setting).
    /// Real request mixes skew heavily toward small instances; pass one
    /// non-negative weight per configured VM type.
    pub fn vm_type_weights(mut self, weights: Vec<f64>) -> Self {
        self.vm_type_weights = Some(weights);
        self
    }

    /// Restricts the server type catalog.
    pub fn server_types(mut self, types: Vec<ServerType>) -> Self {
        self.server_types = types;
        self
    }

    /// Number of VMs to generate.
    pub fn vm_count_value(&self) -> usize {
        self.vm_count
    }

    /// Number of servers to generate.
    pub fn server_count_value(&self) -> usize {
        self.server_count
    }

    /// The configured mean inter-arrival time.
    pub fn mean_interarrival_value(&self) -> f64 {
        self.mean_interarrival
    }

    /// The configured mean duration.
    pub fn mean_duration_value(&self) -> f64 {
        self.mean_duration
    }

    /// The configured transition time.
    pub fn transition_time_value(&self) -> f64 {
        self.transition_time
    }

    /// Generates the seeded instance.
    ///
    /// * server `i` gets type `server_types[i mod k]` (round-robin mix);
    /// * VM start times are Poisson arrivals rounded up to integer units;
    /// * VM durations are exponential, rounded to integer units `≥ 1`;
    /// * VM demands are drawn uniformly from the VM type list.
    ///
    /// # Errors
    ///
    /// [`GenerateError::EmptyCatalog`] for empty type lists;
    /// [`GenerateError::BadWeights`] if the weight vector's arity or
    /// values are invalid;
    /// [`GenerateError::Invalid`] if some VM type fits no server type in
    /// the configuration (e.g. memory-intensive VMs on server types 1–3).
    pub fn generate(&self, seed: u64) -> Result<AllocationProblem, GenerateError> {
        self.generate_with(seed, &mut Vec::new())
    }

    /// [`WorkloadConfig::generate`] with a caller-owned arrival-trace
    /// buffer. The buffer is cleared and refilled from the arrival
    /// count hint (one exact reservation, no intermediate `f64` trace),
    /// so multi-seed sweeps at the 100k / 1M-VM scale points reuse one
    /// allocation instead of churning two `O(vm_count)` temporaries per
    /// seed. Produces the bit-identical instance to
    /// [`WorkloadConfig::generate`] for the same seed.
    ///
    /// # Errors
    ///
    /// As [`WorkloadConfig::generate`].
    pub fn generate_with(
        &self,
        seed: u64,
        arrival_buf: &mut Vec<u32>,
    ) -> Result<AllocationProblem, GenerateError> {
        let cumulative = self.weight_cdf()?;
        let mut rng = StdRng::seed_from_u64(seed);

        let servers = self.build_servers();

        let model = self.arrivals.unwrap_or(ArrivalModel::Poisson {
            mean_interarrival: self.mean_interarrival,
        });
        model.sample_n_time_units_into(self.vm_count, &mut rng, arrival_buf);
        let durations = Exponential::with_mean(self.mean_duration);

        let vms = arrival_buf
            .iter()
            .copied()
            .enumerate()
            .map(|(j, start)| {
                let len = durations.sample_time_units(&mut rng);
                let idx = match &cumulative {
                    None => rng.gen_range(0..self.vm_types.len()),
                    Some(cdf) => {
                        let u: f64 = rng.gen();
                        cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
                    }
                };
                let ty = self.vm_types[idx];
                Vm::new(j as u32, ty.demand(), Interval::with_len(start, len))
            })
            .collect();

        Ok(AllocationProblem::new(servers, vms)?)
    }

    /// Validates the catalogs and turns the optional VM type weights
    /// into a cumulative distribution.
    fn weight_cdf(&self) -> Result<Option<Vec<f64>>, GenerateError> {
        if self.vm_types.is_empty() || self.server_types.is_empty() {
            return Err(GenerateError::EmptyCatalog);
        }
        match &self.vm_type_weights {
            None => Ok(None),
            Some(w) => {
                if w.len() != self.vm_types.len()
                    || w.iter().any(|&x| !x.is_finite() || x < 0.0)
                    || w.iter().sum::<f64>() <= 0.0
                {
                    return Err(GenerateError::BadWeights);
                }
                let total: f64 = w.iter().sum();
                let mut acc = 0.0;
                Ok(Some(
                    w.iter()
                        .map(|&x| {
                            acc += x / total;
                            acc
                        })
                        .collect(),
                ))
            }
        }
    }

    /// The server fleet of the configured instance (round-robin over
    /// the server type catalog), independent of the seed.
    fn build_servers(&self) -> Vec<ServerSpec> {
        (0..self.server_count)
            .map(|i| {
                self.server_types[i % self.server_types.len()]
                    .to_spec(i as u32, self.transition_time)
            })
            .collect()
    }

    /// Streams the seeded instance record-by-record through `sink`
    /// without ever materialising the VM vector.
    ///
    /// Emits the bit-identical record sequence to
    /// [`WorkloadConfig::generate`] for the same seed: `generate` draws
    /// all `n` arrivals first and then the per-VM duration/type pairs
    /// from a single RNG stream, so this method runs two clones of that
    /// RNG in lockstep — one streaming arrivals, one fast-forwarded past
    /// the arrival draws to supply the per-VM draws. Peak memory is
    /// O(servers), not O(VMs).
    ///
    /// # Errors
    ///
    /// As [`WorkloadConfig::generate`] — including
    /// [`GenerateError::Invalid`] with
    /// [`InfeasibleVm`](esvm_simcore::Error::InfeasibleVm) as soon as a
    /// drawn VM fits no server of the fleet.
    pub fn stream_generate(
        &self,
        seed: u64,
        mut sink: impl FnMut(&Vm) -> Result<(), GenerateError>,
    ) -> Result<(), GenerateError> {
        let cumulative = self.weight_cdf()?;
        if self.server_count == 0 {
            return Err(GenerateError::Invalid(esvm_simcore::Error::NoServers));
        }
        // Feasibility of each catalog type against the actual fleet
        // (small server fleets may not include every configured type).
        let present = self.server_count.min(self.server_types.len());
        let fits: Vec<bool> = self
            .vm_types
            .iter()
            .map(|ty| {
                self.server_types[..present]
                    .iter()
                    .any(|s| ty.demand().fits_within(s.capacity()))
            })
            .collect();

        let model = self.arrivals.unwrap_or(ArrivalModel::Poisson {
            mean_interarrival: self.mean_interarrival,
        });
        let durations = Exponential::with_mean(self.mean_duration);

        // Two clones of generate()'s RNG: `arrival_rng` replays the
        // arrival draws in place; `draw_rng` discards the identical
        // arrival draws first, leaving it positioned exactly where the
        // per-VM duration/type draws begin in the single-RNG path.
        let mut arrival_rng = StdRng::seed_from_u64(seed);
        let mut draw_rng = StdRng::seed_from_u64(seed);
        model.sample_each_time_unit(self.vm_count, &mut draw_rng, |_| {});

        let mut j: u32 = 0;
        let mut failure: Option<GenerateError> = None;
        model.sample_each_time_unit(self.vm_count, &mut arrival_rng, |start| {
            if failure.is_some() {
                return;
            }
            let len = durations.sample_time_units(&mut draw_rng);
            let idx = match &cumulative {
                None => draw_rng.gen_range(0..self.vm_types.len()),
                Some(cdf) => {
                    let u: f64 = draw_rng.gen();
                    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
                }
            };
            if !fits[idx] {
                failure = Some(GenerateError::Invalid(
                    esvm_simcore::Error::InfeasibleVm(VmId(j)),
                ));
                return;
            }
            let ty = self.vm_types[idx];
            let vm = Vm::new(j, ty.demand(), Interval::with_len(start, len));
            if let Err(e) = sink(&vm) {
                failure = Some(e);
            }
            j += 1;
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Generates the seeded instance straight into an ESVT stream —
    /// the generator and encoder each hold O(block) state, so a 1M-row
    /// trace is produced without a 1M-element `Vec` ever existing.
    ///
    /// The bytes are identical to
    /// `esvt::to_esvt(&self.generate(seed)?)`.
    ///
    /// # Errors
    ///
    /// As [`WorkloadConfig::stream_generate`], plus
    /// [`GenerateError::Trace`] if the sink fails.
    pub fn generate_esvt<W: Write>(&self, seed: u64, out: W) -> Result<W, GenerateError> {
        // Catalog/weight validation must precede any header write.
        self.weight_cdf()?;
        let servers = self.build_servers();
        let mut w = EsvtWriter::new(out, &servers, self.vm_count as u64)?;
        self.stream_generate(seed, |vm| w.push(vm).map_err(GenerateError::from))?;
        Ok(w.finish()?)
    }

    /// [`WorkloadConfig::generate_esvt`] into a buffered file.
    ///
    /// # Errors
    ///
    /// As [`WorkloadConfig::generate_esvt`].
    pub fn generate_esvt_file(&self, seed: u64, path: impl AsRef<Path>) -> Result<(), GenerateError> {
        let file = std::fs::File::create(path)
            .map_err(|e| GenerateError::Trace(TraceError::Io(e.to_string())))?;
        let mut out = self.generate_esvt(seed, std::io::BufWriter::new(file))?;
        out.flush()
            .map_err(|e| GenerateError::Trace(TraceError::Io(e.to_string())))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{server_types_1_3, standard_vm_types};

    #[test]
    fn generates_requested_counts() {
        let p = WorkloadConfig::new(120, 60).generate(1).unwrap();
        assert_eq!(p.vm_count(), 120);
        assert_eq!(p.server_count(), 60);
    }

    #[test]
    fn same_seed_same_instance() {
        let cfg = WorkloadConfig::new(50, 25).mean_interarrival(2.0);
        let a = cfg.generate(9).unwrap();
        let b = cfg.generate(9).unwrap();
        assert_eq!(a.vms(), b.vms());
        assert_eq!(a.servers(), b.servers());
    }

    #[test]
    fn buffer_reusing_generation_is_bit_identical() {
        let cfg = WorkloadConfig::new(300, 40).mean_interarrival(1.5);
        let mut buf = Vec::new();
        for seed in [0_u64, 7, 42] {
            let owned = cfg.generate(seed).unwrap();
            let reused = cfg.generate_with(seed, &mut buf).unwrap();
            assert_eq!(owned.vms(), reused.vms(), "seed {seed}");
            assert_eq!(owned.servers(), reused.servers(), "seed {seed}");
        }
        // The buffer holds the last trace and its capacity is reused.
        assert_eq!(buf.len(), 300);
        let cap = buf.capacity();
        cfg.generate_with(99, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn streamed_esvt_is_byte_identical_to_materialized() {
        // The two-RNG lockstep must reproduce generate()'s draw order
        // exactly, for every arrival model (thinning draws included).
        let configs = [
            WorkloadConfig::new(500, 40).mean_interarrival(1.5),
            WorkloadConfig::new(300, 20).arrivals(ArrivalModel::Diurnal {
                mean_interarrival: 2.0,
                amplitude: 0.7,
                period: 200.0,
            }),
            WorkloadConfig::new(300, 20).arrivals(ArrivalModel::Bursty {
                quiet_interarrival: 3.0,
                burstiness: 5.0,
                mean_quiet_sojourn: 40.0,
                mean_burst_sojourn: 10.0,
            }),
            WorkloadConfig::new(400, 30).vm_type_weights({
                let mut w = vec![1.0; catalog::vm_types().len()];
                w[0] = 20.0;
                w
            }),
        ];
        for (i, cfg) in configs.iter().enumerate() {
            for seed in [0_u64, 7, 42] {
                let materialized = crate::esvt::to_esvt(&cfg.generate(seed).unwrap());
                let streamed = cfg.generate_esvt(seed, Vec::new()).unwrap();
                assert_eq!(streamed, materialized, "config {i}, seed {seed}");
            }
        }
    }

    #[test]
    fn stream_generate_reports_infeasible_vms() {
        // m2.4xlarge (68.4 GB) does not fit server type 1 (32 GB).
        let cfg = WorkloadConfig::new(200, 10)
            .vm_types(vec![catalog::VM_TYPES[6]])
            .server_types(vec![catalog::SERVER_TYPES[0]]);
        let err = cfg.stream_generate(8, |_| Ok(())).unwrap_err();
        assert!(matches!(err, GenerateError::Invalid(_)), "{err}");
        let err = cfg.generate_esvt(8, Vec::new()).unwrap_err();
        assert!(matches!(err, GenerateError::Invalid(_)), "{err}");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkloadConfig::new(50, 25);
        let a = cfg.generate(1).unwrap();
        let b = cfg.generate(2).unwrap();
        assert_ne!(a.vms(), b.vms());
    }

    #[test]
    fn server_types_cycle_round_robin() {
        let p = WorkloadConfig::new(10, 7).generate(3).unwrap();
        let k = catalog::server_types().len();
        for (i, s) in p.servers().iter().enumerate() {
            let t = &catalog::server_types()[i % k];
            assert_eq!(s.capacity(), t.capacity());
        }
    }

    #[test]
    fn vm_demands_come_from_the_catalog() {
        let p = WorkloadConfig::new(300, 150).generate(4).unwrap();
        for vm in p.vms() {
            assert!(
                catalog::vm_types()
                    .iter()
                    .any(|t| t.demand() == vm.demand()),
                "{vm}"
            );
        }
    }

    #[test]
    fn arrivals_ascend_with_vm_ids() {
        let p = WorkloadConfig::new(200, 100).generate(5).unwrap();
        for w in p.vms().windows(2) {
            assert!(w[0].start() <= w[1].start());
        }
    }

    #[test]
    fn mean_duration_is_respected_statistically() {
        let p = WorkloadConfig::new(5000, 2500)
            .mean_duration(10.0)
            .generate(6)
            .unwrap();
        let mean = p.vms().iter().map(|v| v.duration() as f64).sum::<f64>() / 5000.0;
        assert!((mean - 10.0).abs() < 0.6, "mean duration {mean}");
    }

    #[test]
    fn standard_on_small_servers_is_valid() {
        let p = WorkloadConfig::new(100, 50)
            .vm_types(standard_vm_types())
            .server_types(server_types_1_3())
            .generate(7)
            .unwrap();
        assert_eq!(p.vm_count(), 100);
    }

    #[test]
    fn infeasible_combination_is_rejected() {
        // m2.4xlarge (68.4 GB) does not fit server type 1 (32 GB).
        let cfg = WorkloadConfig::new(200, 10)
            .vm_types(vec![catalog::VM_TYPES[6]])
            .server_types(vec![catalog::SERVER_TYPES[0]]);
        let err = cfg.generate(8).unwrap_err();
        assert!(matches!(err, GenerateError::Invalid(_)));
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let err = WorkloadConfig::new(10, 5)
            .vm_types(vec![])
            .generate(0)
            .unwrap_err();
        assert_eq!(err, GenerateError::EmptyCatalog);
        let err = WorkloadConfig::new(10, 5)
            .server_types(vec![])
            .generate(0)
            .unwrap_err();
        assert_eq!(err, GenerateError::EmptyCatalog);
    }

    #[test]
    fn accessors_report_configuration() {
        let cfg = WorkloadConfig::new(10, 5)
            .mean_interarrival(3.0)
            .mean_duration(7.0)
            .transition_time(0.5);
        assert_eq!(cfg.vm_count_value(), 10);
        assert_eq!(cfg.server_count_value(), 5);
        assert_eq!(cfg.mean_interarrival_value(), 3.0);
        assert_eq!(cfg.mean_duration_value(), 7.0);
        assert_eq!(cfg.transition_time_value(), 0.5);
    }

    #[test]
    fn weighted_vm_types_skew_the_mix() {
        // Weight m1.small 50× the rest: it should dominate the draw.
        let mut weights = vec![1.0; catalog::vm_types().len()];
        weights[0] = 50.0;
        let p = WorkloadConfig::new(2000, 1000)
            .vm_type_weights(weights)
            .generate(21)
            .unwrap();
        let small = catalog::VM_TYPES[0].demand();
        let count = p.vms().iter().filter(|v| v.demand() == small).count();
        // Expected fraction 50/58 ≈ 86 %.
        assert!(count > 1500, "only {count} of 2000 were m1.small");
    }

    #[test]
    fn bad_weights_are_rejected() {
        for weights in [vec![1.0], vec![-1.0; 9], vec![0.0; 9], vec![f64::NAN; 9]] {
            let err = WorkloadConfig::new(10, 5)
                .vm_type_weights(weights.clone())
                .generate(0)
                .unwrap_err();
            assert_eq!(err, GenerateError::BadWeights, "{weights:?}");
        }
    }

    #[test]
    fn arrival_model_override_is_used() {
        use crate::arrivals::ArrivalModel;
        let base = WorkloadConfig::new(200, 100).mean_interarrival(2.0);
        let diurnal = base.clone().arrivals(ArrivalModel::Diurnal {
            mean_interarrival: 2.0,
            amplitude: 0.9,
            period: 50.0,
        });
        let a = base.generate(5).unwrap();
        let b = diurnal.generate(5).unwrap();
        // Same seed, different processes → different arrival patterns.
        assert_ne!(
            a.vms().iter().map(|v| v.start()).collect::<Vec<_>>(),
            b.vms().iter().map(|v| v.start()).collect::<Vec<_>>()
        );
        assert_eq!(b.vm_count(), 200);
    }

    #[test]
    fn transition_time_scales_alpha() {
        let p = WorkloadConfig::new(10, 5)
            .transition_time(3.0)
            .generate(1)
            .unwrap();
        for (i, s) in p.servers().iter().enumerate() {
            let t = &catalog::server_types()[i % 5];
            assert_eq!(s.transition_cost(), t.p_peak * 3.0);
        }
    }
}
