//! ESVT: a binary columnar trace format for million-row workloads.
//!
//! The plain-text [`trace`](crate::trace) format is convenient to diff
//! but costs ~40 bytes and a float parse per field at scale. ESVT stores
//! the same instance column-wise in fixed-size blocks so that
//!
//! * the time columns compress to a byte or two per value (records are
//!   sorted by arrival, so starts are encoded as non-negative deltas and
//!   durations as raw varints);
//! * a reader can hold **one block** of records at a time — peak memory
//!   is O(block), independent of trace length;
//! * each block carries min/max start/end statistics *outside* its
//!   payload, so a selective scan (`esvm query`) can skip whole blocks
//!   with a single seek and never decode them.
//!
//! ## Layout (version 1)
//!
//! ```text
//! magic      4  bytes   b"ESVT"
//! version    u16 LE     1
//! flags      u16 LE     0 (reserved)
//! block_len  varint     records per full block
//! [servers]
//!   count    varint
//!   per server: cpu, mem, p_idle, p_peak, alpha — 5 × f64 LE
//!              (ids are implicit: dense 0..count in file order)
//!   checksum u64 LE     FNV-1a 64 over the server payload bytes
//! [vms]
//!   count    varint     total records across all blocks
//!   blocks, each:
//!     n_records    varint   1..=block_len
//!     min_start    varint ┐
//!     max_start    varint │ block statistics for predicate skipping
//!     min_end      varint │
//!     max_end      varint ┘
//!     payload_len  varint   enables seeking past the payload
//!     payload:
//!       id column        first absolute (zigzag varint), rest zigzag deltas
//!       start column     first absolute (varint), rest non-negative deltas
//!       duration column  varint (end − start) per record
//!       cpu column       n_records × f64 LE
//!       mem column       n_records × f64 LE
//!     checksum     u64 LE   FNV-1a 64 over the payload bytes
//! ```
//!
//! Records are sorted by `(start, id)` — the arrival order every
//! allocator consumes them in ([`AllocationProblem::vms_by_start_time`])
//! — and each block is self-contained (its first record stores absolute
//! values), so skipped blocks never break a delta chain.
//!
//! All multi-byte integers outside the varints are little-endian; a
//! varint is LEB128 (7 bits per byte, high bit = continuation, at most
//! 10 bytes for a `u64`).
//!
//! ## Example
//!
//! ```
//! use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
//! use esvm_workload::esvt;
//!
//! let p = ProblemBuilder::new()
//!     .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
//!     .vm(Resources::new(1.0, 1.7), Interval::new(1, 9))
//!     .build()?;
//! let bytes = esvt::to_esvt(&p);
//! let q = esvt::from_esvt(&bytes)?;
//! assert_eq!(p.vms(), q.vms());
//! assert_eq!(p.servers(), q.servers());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::trace::TraceError;
use esvm_simcore::{
    AllocationProblem, Interval, PowerModel, Resources, ServerSpec, Vm, MAX_TIME,
};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The four magic bytes every ESVT file starts with.
pub const MAGIC: [u8; 4] = *b"ESVT";

/// The format version this module reads and writes.
pub const VERSION: u16 = 1;

/// Default number of records per block.
///
/// Large enough that per-block overhead (stats + checksum, ~50 bytes)
/// is negligible and f64 columns amortise well; small enough that a
/// streaming consumer's resident set stays a few hundred KiB.
pub const DEFAULT_BLOCK_LEN: usize = 4096;

/// Upper bound on the encoded size of one record inside a payload:
/// three varints of at most 10 bytes plus two f64s. Used to reject
/// absurd `payload_len` declarations before allocating.
const MAX_RECORD_BYTES: u64 = 10 + 10 + 10 + 8 + 8;

// ---------------------------------------------------------------------------
// Primitives: varint, zigzag, FNV-1a.
// ---------------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Reads exactly `buf.len()` bytes, mapping EOF to a contextful
/// [`TraceError::Truncated`].
fn read_exact(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { context }
        } else {
            TraceError::Io(e.to_string())
        }
    })
}

fn read_u16(r: &mut impl Read, context: &'static str) -> Result<u16, TraceError> {
    let mut b = [0u8; 2];
    read_exact(r, &mut b, context)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read, context: &'static str) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, context)?;
    Ok(u64::from_le_bytes(b))
}

fn read_varint(r: &mut impl Read, context: &'static str) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let mut b = [0u8; 1];
        read_exact(r, &mut b, context)?;
        let byte = b[0];
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical bits spilled past 64.
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt {
                    context: format!("varint overflows u64 while reading {context}"),
                });
            }
            return Ok(v);
        }
    }
    Err(TraceError::Corrupt {
        context: format!("varint longer than 10 bytes while reading {context}"),
    })
}

/// Varint decoder over an in-memory payload slice.
fn take_varint(payload: &[u8], pos: &mut usize, what: &str) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *payload.get(*pos).ok_or_else(|| TraceError::Corrupt {
            context: format!("{what} column overruns the block payload"),
        })?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt {
                    context: format!("varint overflows u64 in the {what} column"),
                });
            }
            return Ok(v);
        }
    }
    Err(TraceError::Corrupt {
        context: format!("varint longer than 10 bytes in the {what} column"),
    })
}

fn take_f64(payload: &[u8], pos: &mut usize, what: &str) -> Result<f64, TraceError> {
    let end = *pos + 8;
    let bytes = payload
        .get(*pos..end)
        .ok_or_else(|| TraceError::Corrupt {
            context: format!("{what} column overruns the block payload"),
        })?;
    *pos = end;
    Ok(f64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Streaming ESVT encoder: push records in arrival order, one block is
/// buffered at a time, everything else goes straight to the sink.
///
/// The total record count is declared up front (the header stores it
/// before the first block) so encoding stays single-pass over any
/// `Write` sink; [`EsvtWriter::finish`] fails if the declaration was
/// wrong.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, PowerModel, Resources, ServerSpec, Vm};
/// use esvm_workload::esvt::{EsvtWriter, TraceReader};
///
/// let servers = vec![ServerSpec::new(
///     0, Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0,
/// )];
/// let mut w = EsvtWriter::new(Vec::new(), &servers, 2)?;
/// w.push(&Vm::new(0, Resources::new(1.0, 1.0), Interval::new(1, 5)))?;
/// w.push(&Vm::new(1, Resources::new(2.0, 2.0), Interval::new(3, 9)))?;
/// let bytes = w.finish()?;
/// let reader = TraceReader::new(std::io::Cursor::new(bytes))?;
/// assert_eq!(reader.vm_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EsvtWriter<W: Write> {
    out: W,
    block_len: usize,
    declared: u64,
    written: u64,
    pending: Vec<Vm>,
    prev: Option<(u32, u32)>,
    scratch: Vec<u8>,
}

impl<W: Write> EsvtWriter<W> {
    /// Starts an ESVT stream with [`DEFAULT_BLOCK_LEN`] records per
    /// block, writing the header and server section immediately.
    ///
    /// `n_vms` is the total number of records that will be pushed.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the sink fails.
    pub fn new(out: W, servers: &[ServerSpec], n_vms: u64) -> Result<Self, TraceError> {
        Self::with_block_len(out, servers, n_vms, DEFAULT_BLOCK_LEN)
    }

    /// Like [`EsvtWriter::new`] with an explicit block length.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] if `block_len` is zero, otherwise as
    /// [`EsvtWriter::new`].
    pub fn with_block_len(
        mut out: W,
        servers: &[ServerSpec],
        n_vms: u64,
        block_len: usize,
    ) -> Result<Self, TraceError> {
        if block_len == 0 {
            return Err(TraceError::Corrupt {
                context: "block length must be positive".to_owned(),
            });
        }
        let mut head = Vec::with_capacity(64 + servers.len() * 40);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&0u16.to_le_bytes()); // flags
        write_varint(&mut head, block_len as u64);
        write_varint(&mut head, servers.len() as u64);
        let payload_at = head.len();
        for s in servers {
            for v in [
                s.capacity().cpu,
                s.capacity().mem,
                s.power().p_idle(),
                s.power().p_peak(),
                s.transition_cost(),
            ] {
                head.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a(&head[payload_at..]);
        head.extend_from_slice(&sum.to_le_bytes());
        write_varint(&mut head, n_vms);
        out.write_all(&head).map_err(|e| TraceError::Io(e.to_string()))?;
        Ok(Self {
            out,
            block_len,
            declared: n_vms,
            written: 0,
            pending: Vec::with_capacity(block_len),
            prev: None,
            scratch: Vec::new(),
        })
    }

    /// Appends one record. Records must arrive in strictly increasing
    /// `(start, id)` order and fit the declared count and time domain.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on an out-of-order or out-of-domain
    /// record or when pushing past the declared count;
    /// [`TraceError::Io`] if flushing a full block fails.
    pub fn push(&mut self, vm: &Vm) -> Result<(), TraceError> {
        if self.written + self.pending.len() as u64 >= self.declared {
            return Err(TraceError::Corrupt {
                context: format!("more than the declared {} records pushed", self.declared),
            });
        }
        if vm.end() > MAX_TIME {
            return Err(TraceError::Corrupt {
                context: format!(
                    "end {} exceeds the time-unit domain (max {MAX_TIME})",
                    vm.end()
                ),
            });
        }
        let key = (vm.start(), vm.id().0);
        if let Some(prev) = self.prev {
            if key <= prev {
                return Err(TraceError::Corrupt {
                    context: format!(
                        "record (start {}, id {}) not after (start {}, id {})",
                        key.0, key.1, prev.0, prev.1
                    ),
                });
            }
        }
        self.prev = Some(key);
        self.pending.push(*vm);
        if self.pending.len() == self.block_len {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Flushes the final partial block and returns the sink.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] if fewer records were pushed than
    /// declared; [`TraceError::Io`] if the sink fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if !self.pending.is_empty() {
            self.flush_block()?;
        }
        if self.written != self.declared {
            return Err(TraceError::Corrupt {
                context: format!(
                    "{} records pushed but {} declared",
                    self.written, self.declared
                ),
            });
        }
        self.out.flush().map_err(|e| TraceError::Io(e.to_string()))?;
        Ok(self.out)
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        let block = &self.pending;
        let min_start = block.first().expect("non-empty block").start();
        let max_start = block.last().expect("non-empty block").start();
        let min_end = block.iter().map(Vm::end).min().expect("non-empty block");
        let max_end = block.iter().map(Vm::end).max().expect("non-empty block");

        let payload = &mut self.scratch;
        payload.clear();
        // Id column: first absolute (zigzag so any u32 stays short), then
        // signed deltas — generator ids ascend so deltas are usually +1.
        write_varint(payload, zigzag_encode(i64::from(block[0].id().0)));
        for w in block.windows(2) {
            let delta = i64::from(w[1].id().0) - i64::from(w[0].id().0);
            write_varint(payload, zigzag_encode(delta));
        }
        // Start column: sorted, so deltas are non-negative.
        write_varint(payload, u64::from(block[0].start()));
        for w in block.windows(2) {
            write_varint(payload, u64::from(w[1].start() - w[0].start()));
        }
        // Duration column: end − start per record.
        for vm in block.iter() {
            write_varint(payload, u64::from(vm.end() - vm.start()));
        }
        for vm in block.iter() {
            payload.extend_from_slice(&vm.demand().cpu.to_le_bytes());
        }
        for vm in block.iter() {
            payload.extend_from_slice(&vm.demand().mem.to_le_bytes());
        }

        let mut head = Vec::with_capacity(32);
        write_varint(&mut head, block.len() as u64);
        write_varint(&mut head, u64::from(min_start));
        write_varint(&mut head, u64::from(max_start));
        write_varint(&mut head, u64::from(min_end));
        write_varint(&mut head, u64::from(max_end));
        write_varint(&mut head, payload.len() as u64);
        let sum = fnv1a(payload);
        self.out
            .write_all(&head)
            .and_then(|()| self.out.write_all(payload))
            .and_then(|()| self.out.write_all(&sum.to_le_bytes()))
            .map_err(|e| TraceError::Io(e.to_string()))?;
        self.written += block.len() as u64;
        self.pending.clear();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Per-block statistics stored outside the payload, available without
/// decoding the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStats {
    /// 0-based index of the block in the file.
    pub index: usize,
    /// Number of records in the block.
    pub n_records: usize,
    /// Smallest start time in the block.
    pub min_start: u32,
    /// Largest start time in the block (records are sorted by start).
    pub max_start: u32,
    /// Smallest end time in the block.
    pub min_end: u32,
    /// Largest end time in the block.
    pub max_end: u32,
}

/// Counters describing what a [`TraceReader`] actually did — the
/// instrument behind the O(live) memory and block-skipping claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Blocks whose payloads were decoded.
    pub blocks_read: usize,
    /// Blocks skipped via their statistics (payload never decoded).
    pub blocks_skipped: usize,
    /// Records decoded across all read blocks.
    pub records_decoded: u64,
    /// Largest number of records resident in the batch buffer at once —
    /// bounded by the file's block length regardless of trace size.
    pub peak_resident: usize,
}

/// Streaming ESVT decoder over any `Read + Seek` source.
///
/// The header and server section are parsed eagerly by
/// [`TraceReader::new`]; VM blocks are decoded on demand, one at a
/// time, into a caller-supplied buffer. Blocks can be skipped without
/// decoding via [`TraceReader::for_each_batch_if`] — the reader seeks
/// past the payload using the stored length.
pub struct TraceReader<R: Read + Seek> {
    src: R,
    servers: Vec<ServerSpec>,
    block_len: usize,
    vm_count: u64,
    remaining: u64,
    next_index: usize,
    prev_start: u32,
    stats: ReadStats,
    payload_buf: Vec<u8>,
}

impl TraceReader<BufReader<File>> {
    /// Opens an ESVT file for streaming.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] raised while opening or parsing the header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Parses the header and server section of an ESVT stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::BadVersion`],
    /// [`TraceError::Truncated`], [`TraceError::ChecksumMismatch`]
    /// (server section reports block `usize::MAX`) or
    /// [`TraceError::Corrupt`].
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        read_exact(&mut src, &mut magic, "magic bytes")?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = read_u16(&mut src, "version")?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let _flags = read_u16(&mut src, "flags")?;
        let block_len = read_varint(&mut src, "block length")?;
        if block_len == 0 || block_len > u64::from(u32::MAX) {
            return Err(TraceError::Corrupt {
                context: format!("implausible block length {block_len}"),
            });
        }
        let n_servers = read_varint(&mut src, "server count")?;
        if n_servers > u64::from(u32::MAX) {
            return Err(TraceError::Corrupt {
                context: format!("implausible server count {n_servers}"),
            });
        }
        let mut payload = vec![0u8; n_servers as usize * 40];
        read_exact(&mut src, &mut payload, "server records")?;
        let sum = read_u64(&mut src, "server checksum")?;
        if fnv1a(&payload) != sum {
            return Err(TraceError::ChecksumMismatch { block: usize::MAX });
        }
        let mut servers = Vec::with_capacity(n_servers as usize);
        for (i, rec) in payload.chunks_exact(40).enumerate() {
            let mut f = [0.0f64; 5];
            for (j, v) in f.iter_mut().enumerate() {
                *v = f64::from_le_bytes(rec[j * 8..j * 8 + 8].try_into().expect("8 bytes"));
            }
            let [cpu, mem, p_idle, p_peak, alpha] = f;
            // Re-check every invariant the constructors assert, so a
            // corrupt file surfaces as an error instead of a panic.
            if !(cpu.is_finite() && cpu > 0.0)
                || !(mem.is_finite() && mem >= 0.0)
                || !(p_idle.is_finite() && p_peak.is_finite() && (0.0..=p_peak).contains(&p_idle))
                || !(alpha.is_finite() && alpha >= 0.0)
            {
                return Err(TraceError::Corrupt {
                    context: format!(
                        "server {i} has impossible parameters \
                         (cpu {cpu}, mem {mem}, p_idle {p_idle}, p_peak {p_peak}, alpha {alpha})"
                    ),
                });
            }
            servers.push(ServerSpec::new(
                i as u32,
                Resources::new(cpu, mem),
                PowerModel::new(p_idle, p_peak),
                alpha,
            ));
        }
        let vm_count = read_varint(&mut src, "vm count")?;
        Ok(Self {
            src,
            servers,
            block_len: block_len as usize,
            vm_count,
            remaining: vm_count,
            next_index: 0,
            prev_start: 0,
            stats: ReadStats::default(),
            payload_buf: Vec::new(),
        })
    }

    /// The server fleet declared in the header.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// Total VM records declared in the header.
    pub fn vm_count(&self) -> u64 {
        self.vm_count
    }

    /// Records per full block, as declared in the header.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Counters accumulated so far (blocks read/skipped, peak resident).
    pub fn stats(&self) -> ReadStats {
        self.stats
    }

    /// Decodes the next block into `buf` (cleared first), returning its
    /// statistics, or `None` once all declared records are consumed.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] raised by decoding or validation.
    pub fn next_batch_into(
        &mut self,
        buf: &mut Vec<Vm>,
    ) -> Result<Option<BlockStats>, TraceError> {
        self.advance(buf, |_| true).map(|r| r.map(|(s, _)| s))
    }

    /// Like [`TraceReader::next_batch_into`], but consults `keep` with
    /// the block statistics first: when it returns `false` the payload
    /// is skipped with a seek and `buf` is left empty. The boolean in
    /// the result tells whether the block was decoded.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] raised by decoding or validation.
    pub fn next_batch_if(
        &mut self,
        keep: impl FnOnce(&BlockStats) -> bool,
        buf: &mut Vec<Vm>,
    ) -> Result<Option<(BlockStats, bool)>, TraceError> {
        self.advance(buf, keep)
    }

    /// Streams every block through `f`, reusing one internal buffer.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] raised by decoding or validation.
    pub fn for_each_batch<F: FnMut(&[Vm])>(
        &mut self,
        mut f: F,
    ) -> Result<ReadStats, TraceError> {
        self.for_each_batch_if(|_| true, |_, batch| f(batch))
    }

    /// Streams blocks whose statistics pass `keep` through `f`; the
    /// rest are skipped without decoding.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] raised by decoding or validation.
    pub fn for_each_batch_if<P, F>(&mut self, mut keep: P, mut f: F) -> Result<ReadStats, TraceError>
    where
        P: FnMut(&BlockStats) -> bool,
        F: FnMut(&BlockStats, &[Vm]),
    {
        let mut buf = Vec::new();
        while let Some((stats, decoded)) = self.advance(&mut buf, &mut keep)? {
            if decoded {
                f(&stats, &buf);
            }
        }
        Ok(self.stats)
    }

    /// Materialises the remaining records into an [`AllocationProblem`]
    /// (records re-sorted into dense id order for validation).
    ///
    /// # Errors
    ///
    /// Any decode-time [`TraceError`], or [`TraceError::Invalid`] if
    /// the instance fails problem validation.
    pub fn read_problem(mut self) -> Result<AllocationProblem, TraceError> {
        let mut vms = Vec::with_capacity(self.remaining.min(1 << 24) as usize);
        let mut buf = Vec::new();
        while self.next_batch_into(&mut buf)?.is_some() {
            vms.extend_from_slice(&buf);
        }
        vms.sort_unstable_by_key(Vm::id);
        Ok(AllocationProblem::new(self.servers, vms)?)
    }

    /// Adapts the reader into a record-at-a-time iterator.
    pub fn records(self) -> Records<R> {
        Records {
            reader: self,
            buf: Vec::new(),
            pos: 0,
            failed: false,
        }
    }

    fn advance(
        &mut self,
        buf: &mut Vec<Vm>,
        keep: impl FnOnce(&BlockStats) -> bool,
    ) -> Result<Option<(BlockStats, bool)>, TraceError> {
        buf.clear();
        if self.remaining == 0 {
            return Ok(None);
        }
        let index = self.next_index;
        let n = read_varint(&mut self.src, "block record count")?;
        if n == 0 || n > self.block_len as u64 || n > self.remaining {
            return Err(TraceError::Corrupt {
                context: format!(
                    "block {index} declares {n} records (block length {}, {} remaining)",
                    self.block_len, self.remaining
                ),
            });
        }
        let n = n as usize;
        let time = |v: u64, what: &str| -> Result<u32, TraceError> {
            if v > u64::from(MAX_TIME) {
                return Err(TraceError::Corrupt {
                    context: format!(
                        "block {index} {what} {v} exceeds the time-unit domain (max {MAX_TIME})"
                    ),
                });
            }
            Ok(v as u32)
        };
        let min_start = time(read_varint(&mut self.src, "block min start")?, "min start")?;
        let max_start = time(read_varint(&mut self.src, "block max start")?, "max start")?;
        let min_end = time(read_varint(&mut self.src, "block min end")?, "min end")?;
        let max_end = time(read_varint(&mut self.src, "block max end")?, "max end")?;
        if min_start > max_start || min_end > max_end || min_start > min_end
            || max_start > max_end || min_start < self.prev_start
        {
            return Err(TraceError::Corrupt {
                context: format!(
                    "block {index} statistics are inconsistent \
                     (starts [{min_start}, {max_start}], ends [{min_end}, {max_end}], \
                     previous block reached start {})",
                    self.prev_start
                ),
            });
        }
        let payload_len = read_varint(&mut self.src, "block payload length")?;
        if payload_len > n as u64 * MAX_RECORD_BYTES {
            return Err(TraceError::Corrupt {
                context: format!(
                    "block {index} declares a {payload_len}-byte payload for {n} records"
                ),
            });
        }
        let stats = BlockStats {
            index,
            n_records: n,
            min_start,
            max_start,
            min_end,
            max_end,
        };
        self.next_index += 1;
        self.remaining -= n as u64;
        self.prev_start = max_start;

        if !keep(&stats) {
            // Seek past payload + checksum without touching either.
            self.src
                .seek(SeekFrom::Current(payload_len as i64 + 8))
                .map_err(|e| TraceError::Io(e.to_string()))?;
            self.stats.blocks_skipped += 1;
            return Ok(Some((stats, false)));
        }

        self.payload_buf.clear();
        self.payload_buf.resize(payload_len as usize, 0);
        let mut payload = std::mem::take(&mut self.payload_buf);
        let read = read_exact(&mut self.src, &mut payload, "block payload");
        let sum = read.and_then(|()| read_u64(&mut self.src, "block checksum"));
        let decode = sum.and_then(|sum| {
            if fnv1a(&payload) != sum {
                return Err(TraceError::ChecksumMismatch { block: index });
            }
            decode_payload(&payload, &stats, buf)
        });
        self.payload_buf = payload;
        decode?;
        self.stats.blocks_read += 1;
        self.stats.records_decoded += n as u64;
        self.stats.peak_resident = self.stats.peak_resident.max(buf.len());
        Ok(Some((stats, true)))
    }
}

impl<R: Read + Seek> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("servers", &self.servers.len())
            .field("vm_count", &self.vm_count)
            .field("block_len", &self.block_len)
            .field("remaining", &self.remaining)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Decodes one block payload into `buf`, validating every record
/// against the declared statistics and the time-unit domain.
fn decode_payload(
    payload: &[u8],
    stats: &BlockStats,
    buf: &mut Vec<Vm>,
) -> Result<(), TraceError> {
    let n = stats.n_records;
    let index = stats.index;
    let mut pos = 0usize;
    let corrupt = |context: String| TraceError::Corrupt { context };

    let mut ids = Vec::with_capacity(n);
    let mut id: i64 = 0;
    for i in 0..n {
        let raw = zigzag_decode(take_varint(payload, &mut pos, "id")?);
        id = if i == 0 { raw } else { id + raw };
        let id32 = u32::try_from(id)
            .map_err(|_| corrupt(format!("block {index} id {id} outside the u32 domain")))?;
        ids.push(id32);
    }
    let mut starts = Vec::with_capacity(n);
    let mut start: u64 = 0;
    for i in 0..n {
        let raw = take_varint(payload, &mut pos, "start")?;
        start = if i == 0 { raw } else { start + raw };
        if start > u64::from(MAX_TIME) {
            return Err(corrupt(format!(
                "block {index} start {start} exceeds the time-unit domain (max {MAX_TIME})"
            )));
        }
        starts.push(start as u32);
    }
    let mut ends = Vec::with_capacity(n);
    for i in 0..n {
        let dur = take_varint(payload, &mut pos, "duration")?;
        let end = u64::from(starts[i]) + dur;
        if end > u64::from(MAX_TIME) {
            return Err(corrupt(format!(
                "block {index} end {end} exceeds the time-unit domain (max {MAX_TIME})"
            )));
        }
        ends.push(end as u32);
    }
    buf.reserve(n);
    for i in 0..n {
        let cpu = take_f64(payload, &mut pos, "cpu")?;
        if !(cpu.is_finite() && cpu >= 0.0) {
            return Err(corrupt(format!("block {index} record {i} has cpu demand {cpu}")));
        }
        buf.push(Vm::new(
            ids[i],
            Resources::new(cpu, 0.0),
            Interval::new(starts[i], ends[i]),
        ));
    }
    for i in 0..n {
        let mem = take_f64(payload, &mut pos, "mem")?;
        if !(mem.is_finite() && mem >= 0.0) {
            return Err(corrupt(format!("block {index} record {i} has mem demand {mem}")));
        }
        let vm = &mut buf[i];
        *vm = Vm::new(vm.id(), Resources::new(vm.demand().cpu, mem), vm.interval());
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "block {index} has {} trailing payload bytes",
            payload.len() - pos
        )));
    }
    // Per-record ordering and statistics consistency.
    for i in 1..n {
        if (starts[i], ids[i]) <= (starts[i - 1], ids[i - 1]) {
            return Err(corrupt(format!(
                "block {index} records {} and {i} are out of arrival order",
                i - 1
            )));
        }
    }
    let actual_min_end = ends.iter().copied().min().expect("non-empty block");
    let actual_max_end = ends.iter().copied().max().expect("non-empty block");
    if starts[0] != stats.min_start
        || starts[n - 1] != stats.max_start
        || actual_min_end != stats.min_end
        || actual_max_end != stats.max_end
    {
        return Err(corrupt(format!(
            "block {index} statistics disagree with its records"
        )));
    }
    Ok(())
}

/// Record-at-a-time iterator over an ESVT stream; see
/// [`TraceReader::records`].
///
/// Yields `Err` at most once and then fuses.
#[derive(Debug)]
pub struct Records<R: Read + Seek> {
    reader: TraceReader<R>,
    buf: Vec<Vm>,
    pos: usize,
    failed: bool,
}

impl<R: Read + Seek> Records<R> {
    /// The underlying reader's counters.
    pub fn stats(&self) -> ReadStats {
        self.reader.stats()
    }
}

impl<R: Read + Seek> Iterator for Records<R> {
    type Item = Result<Vm, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if self.pos >= self.buf.len() {
            self.pos = 0;
            match self.reader.next_batch_into(&mut self.buf) {
                Ok(Some(_)) => {}
                Ok(None) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let vm = self.buf[self.pos];
        self.pos += 1;
        Some(Ok(vm))
    }
}

// ---------------------------------------------------------------------------
// Whole-problem conveniences.
// ---------------------------------------------------------------------------

/// Encodes a problem to ESVT bytes (records sorted by arrival).
pub fn to_esvt(problem: &AllocationProblem) -> Vec<u8> {
    to_esvt_with_block_len(problem, DEFAULT_BLOCK_LEN)
}

/// [`to_esvt`] with an explicit block length (mainly for tests).
///
/// # Panics
///
/// Panics if `block_len` is zero.
pub fn to_esvt_with_block_len(problem: &AllocationProblem, block_len: usize) -> Vec<u8> {
    let mut w = EsvtWriter::with_block_len(
        Vec::new(),
        problem.servers(),
        problem.vm_count() as u64,
        block_len,
    )
    .expect("in-memory ESVT encode cannot fail");
    problem.for_each_record(|vm| {
        w.push(vm).expect("in-memory ESVT encode cannot fail");
    });
    w.finish().expect("in-memory ESVT encode cannot fail")
}

/// Decodes a full problem from ESVT bytes.
///
/// # Errors
///
/// Any [`TraceError`] raised by parsing or problem validation.
pub fn from_esvt(bytes: &[u8]) -> Result<AllocationProblem, TraceError> {
    TraceReader::new(std::io::Cursor::new(bytes))?.read_problem()
}

/// Writes a problem to an ESVT file.
///
/// # Errors
///
/// [`TraceError::Io`] if the file cannot be created or written.
pub fn write_esvt_file(
    problem: &AllocationProblem,
    path: impl AsRef<Path>,
) -> Result<(), TraceError> {
    let file = File::create(path).map_err(|e| TraceError::Io(e.to_string()))?;
    let mut w = EsvtWriter::new(BufWriter::new(file), problem.servers(), problem.vm_count() as u64)?;
    let mut result = Ok(());
    problem.for_each_record(|vm| {
        if result.is_ok() {
            result = w.push(vm);
        }
    });
    result?;
    w.finish()?.flush().map_err(|e| TraceError::Io(e.to_string()))?;
    Ok(())
}

/// Reads a problem from an ESVT file.
///
/// # Errors
///
/// Any [`TraceError`] raised by opening, parsing, or validation.
pub fn read_esvt_file(path: impl AsRef<Path>) -> Result<AllocationProblem, TraceError> {
    TraceReader::open(path)?.read_problem()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;

    fn sample(vms: usize, seed: u64) -> AllocationProblem {
        WorkloadConfig::new(vms, 10).generate(seed).unwrap()
    }

    #[test]
    fn round_trips_bit_exact() {
        let p = sample(500, 7);
        let bytes = to_esvt(&p);
        let q = from_esvt(&bytes).unwrap();
        assert_eq!(p.servers(), q.servers());
        assert_eq!(p.vms(), q.vms());
        assert_eq!(p.horizon(), q.horizon());
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        let p = sample(100, 3);
        for block_len in [1, 2, 7, 99, 100, 101, 4096] {
            let bytes = to_esvt_with_block_len(&p, block_len);
            let q = from_esvt(&bytes).unwrap();
            assert_eq!(p.vms(), q.vms(), "block_len {block_len}");
        }
    }

    #[test]
    fn empty_vm_section_round_trips() {
        let p = AllocationProblem::new(
            vec![ServerSpec::new(
                0,
                Resources::new(4.0, 8.0),
                PowerModel::new(50.0, 100.0),
                10.0,
            )],
            vec![],
        )
        .unwrap();
        let bytes = to_esvt(&p);
        let q = from_esvt(&bytes).unwrap();
        assert_eq!(q.vm_count(), 0);
        assert_eq!(p.servers(), q.servers());
    }

    #[test]
    fn reader_is_block_bounded() {
        let p = sample(1000, 11);
        let bytes = to_esvt_with_block_len(&p, 64);
        let mut r = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut total = 0u64;
        let stats = r
            .for_each_batch(|batch| {
                assert!(batch.len() <= 64);
                total += batch.len() as u64;
            })
            .unwrap();
        assert_eq!(total, 1000);
        assert_eq!(stats.peak_resident, 64);
        assert_eq!(stats.blocks_read, (1000 + 63) / 64);
        assert_eq!(stats.blocks_skipped, 0);
    }

    #[test]
    fn block_filter_skips_without_decoding() {
        let p = sample(1000, 19);
        let bytes = to_esvt_with_block_len(&p, 32);
        // Find a start cutoff somewhere in the middle of the trace.
        let mut starts: Vec<u32> = p.vms().iter().map(Vm::start).collect();
        starts.sort_unstable();
        let cutoff = starts[starts.len() / 2];

        let mut r = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut kept = Vec::new();
        let stats = r
            .for_each_batch_if(
                |s| s.max_start >= cutoff,
                |_, batch| kept.extend(batch.iter().filter(|v| v.start() >= cutoff).copied()),
            )
            .unwrap();
        assert!(stats.blocks_skipped > 0, "expected some skipped blocks");
        let expected = p.vms().iter().filter(|v| v.start() >= cutoff).count();
        assert_eq!(kept.len(), expected);
    }

    #[test]
    fn records_iterator_streams_in_arrival_order() {
        let p = sample(200, 23);
        let bytes = to_esvt_with_block_len(&p, 16);
        let r = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let streamed: Vec<Vm> = r.records().map(|r| r.unwrap()).collect();
        let expected: Vec<Vm> = p.stream_records().copied().collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn writer_rejects_out_of_order_and_miscounted_pushes() {
        let servers = vec![ServerSpec::new(
            0,
            Resources::new(4.0, 8.0),
            PowerModel::new(50.0, 100.0),
            10.0,
        )];
        let mut w = EsvtWriter::new(Vec::new(), &servers, 2).unwrap();
        w.push(&Vm::new(1, Resources::new(1.0, 1.0), Interval::new(5, 9)))
            .unwrap();
        let err = w
            .push(&Vm::new(0, Resources::new(1.0, 1.0), Interval::new(3, 4)))
            .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");

        let w = EsvtWriter::new(Vec::new(), &servers, 2).unwrap();
        let err = w.finish().unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn bad_magic_is_typed() {
        let p = sample(5, 1);
        let mut bytes = to_esvt(&p);
        bytes[0] = b'X';
        assert_eq!(from_esvt(&bytes).unwrap_err(), TraceError::BadMagic);
    }

    #[test]
    fn wrong_version_is_typed() {
        let p = sample(5, 1);
        let mut bytes = to_esvt(&p);
        bytes[4] = 9;
        assert_eq!(from_esvt(&bytes).unwrap_err(), TraceError::BadVersion(9));
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let p = sample(20, 2);
        let bytes = to_esvt_with_block_len(&p, 8);
        for len in 0..bytes.len() {
            let err = from_esvt(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. }
                        | TraceError::Corrupt { .. }
                        | TraceError::ChecksumMismatch { .. }
                ),
                "prefix of {len} bytes gave unexpected error {err}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let p = sample(50, 4);
        let clean = to_esvt_with_block_len(&p, 16);
        // Flip one byte somewhere in the VM blocks (past the server
        // section) and demand a typed error — never a panic, never a
        // silent success.
        let server_section_end = 4 + 2 + 2 + 2 + 1 + p.server_count() * 40 + 8;
        let mut seen_checksum_error = false;
        for pos in server_section_end..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0xff;
            match from_esvt(&bytes) {
                Err(TraceError::ChecksumMismatch { .. }) => seen_checksum_error = true,
                Err(_) => {}
                Ok(q) => {
                    // Flipping a bit may land in an unread suffix only if
                    // the decode still saw identical records.
                    assert_eq!(q.vms(), p.vms(), "corruption at byte {pos} went unnoticed");
                }
            }
        }
        assert!(seen_checksum_error);
    }

    #[test]
    fn server_section_corruption_is_detected() {
        let p = sample(5, 6);
        let mut bytes = to_esvt(&p);
        // First f64 of the first server record sits right after
        // magic(4) + version(2) + flags(2) + block_len varint + count varint.
        let off = 4 + 2 + 2 + 2 + 1;
        bytes[off] ^= 0xff;
        assert_eq!(
            from_esvt(&bytes).unwrap_err(),
            TraceError::ChecksumMismatch { block: usize::MAX }
        );
    }

    #[test]
    fn out_of_domain_times_are_rejected() {
        // Hand-craft a block whose duration pushes end past MAX_TIME.
        let servers = vec![ServerSpec::new(
            0,
            Resources::new(4.0, 8.0),
            PowerModel::new(50.0, 100.0),
            10.0,
        )];
        let mut w = EsvtWriter::new(Vec::new(), &servers, 1).unwrap();
        let err = w
            .push(&Vm::new(
                0,
                Resources::new(1.0, 1.0),
                Interval::new(u32::MAX, u32::MAX),
            ))
            .unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos, "test").unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::from(u32::MAX), i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn esvt_is_smaller_than_text() {
        let p = sample(2000, 9);
        let text = crate::trace::to_text(&p).len();
        let binary = to_esvt(&p).len();
        assert!(
            binary < text,
            "ESVT ({binary} bytes) should beat text ({text} bytes)"
        );
    }

    #[test]
    fn file_round_trip() {
        let p = sample(300, 15);
        let dir = std::env::temp_dir().join("esvm-esvt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.esvt");
        write_esvt_file(&p, &path).unwrap();
        let q = read_esvt_file(&path).unwrap();
        assert_eq!(p.vms(), q.vms());
        assert_eq!(p.servers(), q.servers());
        std::fs::remove_file(&path).ok();
    }
}
