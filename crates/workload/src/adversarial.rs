//! Adversarial trace presets for the online/offline optimality gap.
//!
//! Offline MIEC sees the whole trace; the online engine commits at
//! arrival. These presets construct traces that exploit exactly that
//! asymmetry, following the lower-bound recipes of Albers &
//! Quedenfeld's online right-sizing papers (PAPERS.md):
//!
//! * the ski-rental **break-even gap** `g* = α / P_idle` — the gap
//!   length at which idling through and powering down cost the same
//!   (Eq. 16) — paces the inter-cycle silences, alternating just below
//!   and just above `g*` so the online allocator's awake-set carries
//!   maximally regrettable bridging commitments from cycle to cycle;
//! * inside each cycle a classic online bin-packing trap: a trickle of
//!   small VMs the greedy rule pairs up compactly, followed by burst
//!   VMs sized to fit *only* on pristine servers — hindsight would have
//!   paired trickle and burst (their demands sum to exactly one
//!   server), waking ~25 % fewer machines.
//!
//! Every preset is deterministic per seed and produces a plain
//! [`AllocationProblem`], so it flows through `esvm gap`, the
//! differential suites and the trace formats unchanged.

use std::fmt;
use std::str::FromStr;

use esvm_simcore::{AllocationProblem, Interval, PowerModel, ProblemBuilder, Resources};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fleet physics shared by the presets: one homogeneous class, so the
/// break-even gap is a single well-defined number.
const P_IDLE: f64 = 100.0;
const P_PEAK: f64 = 200.0;
/// `α = 800` ⇒ `g* = α / P_idle = 8` time units.
const ALPHA: f64 = 800.0;
const CPU: f64 = 8.0;
const MEM: f64 = 16.0;

/// The break-even gap `g* = α / P_idle` of the preset fleet.
fn g_star() -> u32 {
    (ALPHA / P_IDLE) as u32
}

/// A named adversarial trace family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AdversaryPreset {
    /// Trickle-then-burst cycles paced by gaps alternating around the
    /// ski-rental break-even point `g*` (see the module docs).
    BreakEven,
    /// Sawtooth load: arrivals whose durations ramp down so concurrency
    /// climbs to a peak and collapses at once, repeated with
    /// near-break-even silences in between.
    Sawtooth,
}

impl AdversaryPreset {
    /// All presets, in presentation order.
    pub const ALL: [AdversaryPreset; 2] = [AdversaryPreset::BreakEven, AdversaryPreset::Sawtooth];

    /// The canonical kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryPreset::BreakEven => "break-even",
            AdversaryPreset::Sawtooth => "sawtooth",
        }
    }

    /// Builds an adversarial instance with `servers` machines and at
    /// least `min_vms` VMs (whole cycles are emitted, so the exact
    /// count rounds up to a cycle boundary).
    ///
    /// # Errors
    ///
    /// Propagates [`esvm_simcore::Error`] from problem validation.
    pub fn problem(
        &self,
        min_vms: usize,
        servers: usize,
        seed: u64,
    ) -> Result<AllocationProblem, esvm_simcore::Error> {
        let servers = servers.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = ProblemBuilder::new();
        for _ in 0..servers {
            builder = builder.server(
                Resources::new(CPU, MEM),
                PowerModel::new(P_IDLE, P_PEAK),
                ALPHA,
            );
        }
        let mut vms: Vec<(Resources, Interval)> = Vec::with_capacity(min_vms + 2 * servers);
        let mut t: u32 = 1;
        while vms.len() < min_vms.max(1) {
            let cycle_end = match self {
                AdversaryPreset::BreakEven => break_even_cycle(&mut vms, t, servers),
                AdversaryPreset::Sawtooth => sawtooth_cycle(&mut vms, t, servers),
            };
            // The inter-cycle silence: one unit under or over the
            // break-even gap, seeded so no fixed parity is learnable.
            let gap = if rng.gen::<bool>() {
                g_star() - 1
            } else {
                g_star() + 1
            };
            t = cycle_end + 1 + gap;
        }
        for (demand, interval) in vms {
            builder = builder.vm(demand, interval);
        }
        builder.build()
    }
}

/// One trickle-then-burst cycle starting at `t0`; returns the last
/// occupied time unit.
///
/// Trickle: `S` VMs of 3 CPU staggered one unit apart, alive through
/// the whole cycle — the greedy rule pairs them two per server
/// (3 + 3 = 6 ≤ 8; a third does not fit), occupying ⌈S/2⌉ machines.
/// Burst: ⌊S/2⌋ VMs of 5 CPU arriving together while every trickle is
/// still live — 5 does not fit next to a pair (6 + 5 > 8), so online
/// wakes ⌊S/2⌋ *fresh* servers. Hindsight pairs 5 + 3 = 8 exactly and
/// runs the cycle on ~¾ of the machines.
fn break_even_cycle(vms: &mut Vec<(Resources, Interval)>, t0: u32, servers: usize) -> u32 {
    let s = servers as u32;
    let trickle_len = s + 4;
    for i in 0..s {
        vms.push((
            Resources::new(3.0, 6.0),
            Interval::with_len(t0 + i, trickle_len - i),
        ));
    }
    let burst_start = t0 + s;
    for _ in 0..servers / 2 {
        vms.push((Resources::new(5.0, 10.0), Interval::with_len(burst_start, 4)));
    }
    t0 + trickle_len - 1
}

/// One sawtooth ramp starting at `t0`; returns the last occupied time
/// unit. `2S` VMs of 4 CPU arrive one per unit with durations shrinking
/// so everything ends together: concurrency climbs to the fleet's
/// capacity and collapses at once.
fn sawtooth_cycle(vms: &mut Vec<(Resources, Interval)>, t0: u32, servers: usize) -> u32 {
    let ramp = (2 * servers) as u32;
    for k in 0..ramp {
        vms.push((
            Resources::new(4.0, 8.0),
            Interval::with_len(t0 + k, ramp - k),
        ));
    }
    t0 + ramp - 1
}

impl fmt::Display for AdversaryPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`AdversaryPreset`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAdversaryError(String);

impl fmt::Display for ParseAdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown adversary {:?}; expected one of: {}",
            self.0,
            AdversaryPreset::ALL
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseAdversaryError {}

impl FromStr for AdversaryPreset {
    type Err = ParseAdversaryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AdversaryPreset::ALL
            .iter()
            .find(|p| p.name() == s)
            .copied()
            .ok_or_else(|| ParseAdversaryError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for preset in AdversaryPreset::ALL {
            let parsed: AdversaryPreset = preset.name().parse().unwrap();
            assert_eq!(parsed, preset);
        }
        assert!("galactic".parse::<AdversaryPreset>().is_err());
    }

    #[test]
    fn builds_at_least_the_requested_vms_deterministically() {
        for preset in AdversaryPreset::ALL {
            let a = preset.problem(40, 8, 7).unwrap();
            let b = preset.problem(40, 8, 7).unwrap();
            assert!(a.vm_count() >= 40, "{preset}: {}", a.vm_count());
            assert_eq!(a.server_count(), 8);
            assert_eq!(a.vm_count(), b.vm_count());
            assert_eq!(
                a.stats().offered_cpu_load.to_bits(),
                b.stats().offered_cpu_load.to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_vary_the_gap_pattern() {
        let a = AdversaryPreset::BreakEven.problem(60, 6, 1).unwrap();
        let b = AdversaryPreset::BreakEven.problem(60, 6, 2).unwrap();
        let horizon = |p: &AllocationProblem| p.vms().iter().map(|v| v.end()).max().unwrap();
        assert_ne!(horizon(&a), horizon(&b), "gap alternation should be seeded");
    }

    #[test]
    fn break_even_cycles_fit_the_fleet() {
        // Structural feasibility: each cycle needs ⌈S/2⌉ servers for
        // trickle pairs plus ⌊S/2⌋ pristine servers for bursts —
        // exactly S. (The end-to-end greedy run is exercised by the
        // differential suite in the workspace root.)
        let p = AdversaryPreset::BreakEven.problem(30, 5, 3).unwrap();
        assert!(p.vms().iter().all(|v| v.demand().cpu <= CPU));
        assert!(p.stats().offered_cpu_load > 0.0);
    }
}
