//! Arrival processes beyond the paper's homogeneous Poisson stream.
//!
//! The paper generates arrivals from a homogeneous Poisson process
//! (Section IV-B1). Real cloud request streams are neither stationary
//! nor memoryless, and the value of energy-aware allocation depends on
//! exactly that structure — so this module adds two standard richer
//! models, both reducible to the paper's when their extra parameters
//! are neutral:
//!
//! * [`ArrivalModel::Poisson`] — the paper's process;
//! * [`ArrivalModel::Diurnal`] — a non-homogeneous Poisson process with
//!   a sinusoidal day/night rate profile, sampled by thinning;
//! * [`ArrivalModel::Bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2): quiet and burst phases with exponentially
//!   distributed sojourns.

use crate::dist::Exponential;
use rand::Rng;
use serde::Serialize;

/// An arrival process generating ascending continuous arrival instants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalModel {
    /// Homogeneous Poisson with the given mean inter-arrival time.
    Poisson {
        /// Mean time between arrivals.
        mean_interarrival: f64,
    },
    /// Non-homogeneous Poisson: the instantaneous rate swings
    /// sinusoidally around `1 / mean_interarrival` with relative
    /// amplitude `amplitude ∈ [0, 1]` and the given period.
    Diurnal {
        /// Mean time between arrivals (over a full period).
        mean_interarrival: f64,
        /// Relative swing of the rate (0 = the Poisson model, 1 = rate
        /// touches zero at the trough).
        amplitude: f64,
        /// Length of one day/night cycle, in time units.
        period: f64,
    },
    /// MMPP-2: alternates between a quiet phase (mean inter-arrival
    /// `quiet_interarrival`) and a burst phase
    /// (`quiet_interarrival / burstiness`), with exponential sojourn
    /// times of the given means.
    Bursty {
        /// Mean inter-arrival in the quiet phase.
        quiet_interarrival: f64,
        /// Rate multiplier of the burst phase (≥ 1).
        burstiness: f64,
        /// Mean sojourn in the quiet phase.
        mean_quiet_sojourn: f64,
        /// Mean sojourn in the burst phase.
        mean_burst_sojourn: f64,
    },
}

impl ArrivalModel {
    /// Validates parameters; called by the samplers.
    ///
    /// # Panics
    ///
    /// Panics on non-finite / non-positive times, amplitude outside
    /// `[0, 1]`, or burstiness below 1.
    fn validate(&self) {
        match *self {
            ArrivalModel::Poisson { mean_interarrival } => {
                assert!(
                    mean_interarrival.is_finite() && mean_interarrival > 0.0,
                    "mean inter-arrival must be positive"
                );
            }
            ArrivalModel::Diurnal {
                mean_interarrival,
                amplitude,
                period,
            } => {
                assert!(
                    mean_interarrival.is_finite() && mean_interarrival > 0.0,
                    "mean inter-arrival must be positive"
                );
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "amplitude must lie in [0, 1]"
                );
                assert!(period.is_finite() && period > 0.0, "period must be positive");
            }
            ArrivalModel::Bursty {
                quiet_interarrival,
                burstiness,
                mean_quiet_sojourn,
                mean_burst_sojourn,
            } => {
                assert!(
                    quiet_interarrival.is_finite() && quiet_interarrival > 0.0,
                    "quiet inter-arrival must be positive"
                );
                assert!(
                    burstiness.is_finite() && burstiness >= 1.0,
                    "burstiness must be >= 1"
                );
                assert!(
                    mean_quiet_sojourn > 0.0 && mean_burst_sojourn > 0.0,
                    "sojourn means must be positive"
                );
            }
        }
    }

    /// Core sampler: emits `n` ascending arrival instants through
    /// `emit` without materialising them. All public samplers delegate
    /// here, so every variant draws the identical RNG stream whatever
    /// the output representation — seeded instances are stable across
    /// the owned and buffer-reusing entry points.
    fn sample_each<R: Rng + ?Sized>(&self, n: usize, rng: &mut R, mut emit: impl FnMut(f64)) {
        self.validate();
        match *self {
            ArrivalModel::Poisson { mean_interarrival } => {
                let gap = Exponential::with_mean(mean_interarrival);
                let mut t = 0.0;
                for _ in 0..n {
                    t += gap.sample(rng);
                    emit(t);
                }
            }
            ArrivalModel::Diurnal {
                mean_interarrival,
                amplitude,
                period,
            } => {
                // Thinning against the peak rate.
                let mean_rate = 1.0 / mean_interarrival;
                let peak_rate = mean_rate * (1.0 + amplitude);
                let gap = Exponential::with_mean(1.0 / peak_rate);
                let rate_at = |t: f64| {
                    mean_rate
                        * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin())
                };
                let mut t = 0.0;
                let mut emitted = 0usize;
                while emitted < n {
                    t += gap.sample(rng);
                    if rng.gen::<f64>() < rate_at(t) / peak_rate {
                        emit(t);
                        emitted += 1;
                    }
                }
            }
            ArrivalModel::Bursty {
                quiet_interarrival,
                burstiness,
                mean_quiet_sojourn,
                mean_burst_sojourn,
            } => {
                // Thinning against the burst rate, with phase switching.
                let burst_rate = burstiness / quiet_interarrival;
                let gap = Exponential::with_mean(1.0 / burst_rate);
                let quiet_sojourn = Exponential::with_mean(mean_quiet_sojourn);
                let burst_sojourn = Exponential::with_mean(mean_burst_sojourn);

                let mut t = 0.0;
                let mut in_burst = false;
                let mut phase_end = quiet_sojourn.sample(rng);
                let mut emitted = 0usize;
                while emitted < n {
                    t += gap.sample(rng);
                    while t >= phase_end {
                        in_burst = !in_burst;
                        phase_end += if in_burst {
                            burst_sojourn.sample(rng)
                        } else {
                            quiet_sojourn.sample(rng)
                        };
                    }
                    let accept = if in_burst { 1.0 } else { 1.0 / burstiness };
                    if rng.gen::<f64>() < accept {
                        emit(t);
                        emitted += 1;
                    }
                }
            }
        }
    }

    /// Samples the first `n` arrival instants.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see the variant docs).
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        self.sample_each(n, rng, |t| out.push(t));
        out
    }

    /// Samples `n` arrivals rounded up to integer time units `≥ 1`
    /// (the simulator's discrete clock).
    pub fn sample_n_time_units<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        let mut out = Vec::new();
        self.sample_n_time_units_into(n, rng, &mut out);
        out
    }

    /// [`ArrivalModel::sample_n_time_units`] into a caller-owned
    /// buffer: clears `out`, reserves exactly once from the arrival
    /// count hint `n`, and converts each instant to the discrete clock
    /// as it is drawn — no intermediate `f64` trace is materialised.
    /// Reusing `out` across seeds makes large-scale sweeps (100k / 1M
    /// VMs) allocate the trace buffer once instead of twice per seed.
    pub fn sample_n_time_units_into<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        out.reserve(n);
        self.sample_each_time_unit(n, rng, |t| out.push(t));
    }

    /// Streams `n` discrete arrival times through `emit` without
    /// materialising them — the O(1)-memory twin of
    /// [`ArrivalModel::sample_n_time_units_into`]. Both draw the
    /// identical RNG stream and emit identical values, so a streaming
    /// generator and a buffering one stay bit-for-bit in lockstep from
    /// the same seed.
    pub fn sample_each_time_unit<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        mut emit: impl FnMut(u32),
    ) {
        self.sample_each(n, rng, |t| {
            let t = t.ceil();
            emit(if t < 1.0 {
                1
            } else if t > u32::MAX as f64 {
                u32::MAX
            } else {
                t as u32
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn mean_gap(arrivals: &[f64]) -> f64 {
        arrivals.last().unwrap() / arrivals.len() as f64
    }

    #[test]
    fn poisson_matches_dist_module_statistics() {
        let model = ArrivalModel::Poisson {
            mean_interarrival: 3.0,
        };
        let arrivals = model.sample_n(40_000, &mut rng(1));
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!((mean_gap(&arrivals) - 3.0).abs() < 0.1);
    }

    #[test]
    fn diurnal_mean_rate_is_preserved() {
        let model = ArrivalModel::Diurnal {
            mean_interarrival: 2.0,
            amplitude: 0.8,
            period: 1440.0,
        };
        let arrivals = model.sample_n(100_000, &mut rng(2));
        // Over many periods the average gap equals the nominal one.
        assert!(
            (mean_gap(&arrivals) - 2.0).abs() < 0.1,
            "mean gap {}",
            mean_gap(&arrivals)
        );
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diurnal_with_zero_amplitude_is_poisson_like() {
        let model = ArrivalModel::Diurnal {
            mean_interarrival: 2.0,
            amplitude: 0.0,
            period: 100.0,
        };
        let arrivals = model.sample_n(50_000, &mut rng(3));
        assert!((mean_gap(&arrivals) - 2.0).abs() < 0.1);
    }

    #[test]
    fn diurnal_concentrates_arrivals_at_the_peak() {
        let period = 1000.0;
        let model = ArrivalModel::Diurnal {
            mean_interarrival: 1.0,
            amplitude: 0.9,
            period,
        };
        let arrivals = model.sample_n(200_000, &mut rng(4));
        // Phase histogram: peak half (sin > 0) should hold far more.
        let (mut peak, mut trough) = (0u64, 0u64);
        for &t in &arrivals {
            let phase = (t / period).fract();
            if phase < 0.5 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > trough as f64 * 2.0,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn bursty_with_unit_burstiness_is_poisson() {
        let model = ArrivalModel::Bursty {
            quiet_interarrival: 2.0,
            burstiness: 1.0,
            mean_quiet_sojourn: 50.0,
            mean_burst_sojourn: 50.0,
        };
        let arrivals = model.sample_n(50_000, &mut rng(5));
        assert!((mean_gap(&arrivals) - 2.0).abs() < 0.1);
    }

    #[test]
    fn bursty_gaps_have_excess_variance() {
        // Index of dispersion of counts > 1 distinguishes MMPP from
        // Poisson. Approximate via gap CV²: Poisson ⇒ 1, MMPP ⇒ > 1.
        let cv2 = |arrivals: &[f64]| {
            let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var =
                gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let bursty = ArrivalModel::Bursty {
            quiet_interarrival: 4.0,
            burstiness: 10.0,
            mean_quiet_sojourn: 200.0,
            mean_burst_sojourn: 50.0,
        };
        let poisson = ArrivalModel::Poisson {
            mean_interarrival: 4.0,
        };
        let b = cv2(&bursty.sample_n(60_000, &mut rng(6)));
        let p = cv2(&poisson.sample_n(60_000, &mut rng(7)));
        assert!((p - 1.0).abs() < 0.15, "poisson CV² {p}");
        assert!(b > 1.5, "bursty CV² {b} not over-dispersed");
    }

    #[test]
    fn discrete_sampling_starts_at_one() {
        let model = ArrivalModel::Poisson {
            mean_interarrival: 0.2,
        };
        let units = model.sample_n_time_units(1000, &mut rng(8));
        assert!(units[0] >= 1);
        assert!(units.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_is_rejected() {
        ArrivalModel::Diurnal {
            mean_interarrival: 1.0,
            amplitude: 1.5,
            period: 10.0,
        }
        .sample_n(1, &mut rng(0));
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn invalid_burstiness_is_rejected() {
        ArrivalModel::Bursty {
            quiet_interarrival: 1.0,
            burstiness: 0.5,
            mean_quiet_sojourn: 1.0,
            mean_burst_sojourn: 1.0,
        }
        .sample_n(1, &mut rng(0));
    }
}
