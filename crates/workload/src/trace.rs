//! Plain-text traces of allocation problems.
//!
//! A trace is a line-oriented text format so instances can be archived,
//! diffed, and exchanged with other tools without pulling in a CSV or
//! JSON dependency:
//!
//! ```text
//! # esvm trace v1
//! [servers]
//! id,cpu,mem,p_idle,p_peak,alpha
//! 0,16,32,38,80,80
//! [vms]
//! id,cpu,mem,start,end
//! 0,1,1.7,1,9
//! ```
//!
//! Blank lines and `#` comments are ignored; the header lines after each
//! section marker are mandatory and validated.

use esvm_simcore::{AllocationProblem, PowerModel, Resources, ServerSpec, Vm};
use std::fmt;

/// Errors raised while parsing a trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// The version line is missing or unsupported.
    BadHeader,
    /// A section marker or column header is missing or malformed.
    BadSection(String),
    /// A data line has the wrong number of fields, a non-numeric field,
    /// or a physically impossible value (NaN/negative demand, inverted
    /// interval, power model with `p_idle > p_peak`).
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Two records in the same section share an id.
    DuplicateId {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// `"server"` or `"vm"`.
        what: &'static str,
        /// The repeated id.
        id: u32,
    },
    /// The parsed instance fails [`AllocationProblem`] validation.
    Invalid(esvm_simcore::Error),
    /// A binary trace does not start with the ESVT magic bytes.
    BadMagic,
    /// A binary trace's format version is unsupported.
    BadVersion(u16),
    /// The input ended before the declared contents were read.
    Truncated {
        /// What was being read when the input ran out.
        context: &'static str,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// 0-based VM block index, or `usize::MAX` for the server
        /// section.
        block: usize,
    },
    /// A structurally impossible encoded value: a time outside the
    /// unit domain, records out of arrival order, or block accounting
    /// that disagrees with the header.
    Corrupt {
        /// Description of the inconsistency.
        context: String,
    },
    /// Reading or writing the underlying byte stream failed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "missing or unsupported trace header"),
            TraceError::BadSection(s) => write!(f, "bad section: {s}"),
            TraceError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            TraceError::DuplicateId { line, what, id } => {
                write!(f, "line {line}: duplicate {what} id {id}")
            }
            TraceError::Invalid(e) => write!(f, "invalid instance: {e}"),
            TraceError::BadMagic => write!(f, "not an ESVT trace (bad magic bytes)"),
            TraceError::BadVersion(v) => write!(f, "unsupported ESVT version {v}"),
            TraceError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            TraceError::ChecksumMismatch { block } => {
                if *block == usize::MAX {
                    write!(f, "checksum mismatch in the server section")
                } else {
                    write!(f, "checksum mismatch in VM block {block}")
                }
            }
            TraceError::Corrupt { context } => write!(f, "corrupt trace: {context}"),
            TraceError::Io(e) => write!(f, "trace I/O failed: {e}"),
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { context: "byte stream" }
        } else {
            TraceError::Io(e.to_string())
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<esvm_simcore::Error> for TraceError {
    fn from(e: esvm_simcore::Error) -> Self {
        TraceError::Invalid(e)
    }
}

/// Field-level validation shared by every text ingestion surface.
///
/// The trace parser ([`from_text`]) and the `esvm serve` `REQ` parser
/// accept the same physical quantities — ids, times, resource demands
/// — from hostile input. Both route every token through these
/// validators so a value that cannot reach the engine from a trace
/// file cannot reach it from the wire either (NaN, negative or
/// infinite demands, ids and times outside `u32`, intervals past
/// [`MAX_TIME`](esvm_simcore::MAX_TIME)). Each surface only maps
/// [`FieldError`] into its own typed error.
pub mod fields {
    use esvm_simcore::{Interval, MAX_TIME};

    /// Why a single field (or field pair) was rejected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FieldError {
        /// Grammar name of the field (`"cpu"`, `"start"`, …).
        pub field: &'static str,
        /// The offending raw token (rendered for pair checks).
        pub value: String,
        /// Human-readable reason, suitable for error replies.
        pub reason: String,
    }

    /// Parses an unsigned integer field (ids, times, durations).
    pub fn parse_u32(field: &'static str, token: &str) -> Result<u32, FieldError> {
        token.parse::<u32>().map_err(|_| FieldError {
            field,
            value: token.to_owned(),
            reason: format!("{field} is not a non-negative integer: {token:?}"),
        })
    }

    /// Parses a finite float field.
    pub fn parse_finite(field: &'static str, token: &str) -> Result<f64, FieldError> {
        let v = token.parse::<f64>().map_err(|_| FieldError {
            field,
            value: token.to_owned(),
            reason: format!("{field} is not a number: {token:?}"),
        })?;
        if !v.is_finite() {
            return Err(FieldError {
                field,
                value: token.to_owned(),
                reason: format!("{field} must be finite, got {token:?}"),
            });
        }
        Ok(v)
    }

    /// Parses a resource demand: finite and non-negative. NaN,
    /// infinities and negatives would panic inside
    /// `Resources::new`; they are input errors here.
    pub fn parse_demand(field: &'static str, token: &str) -> Result<f64, FieldError> {
        let v = parse_finite(field, token)?;
        if v < 0.0 {
            return Err(FieldError {
                field,
                value: token.to_owned(),
                reason: format!("{field} must be non-negative, got {v}"),
            });
        }
        Ok(v)
    }

    /// Validates a closed interval against the time-unit domain:
    /// `start <= end <= MAX_TIME` (`Interval::new` would panic
    /// otherwise).
    pub fn checked_interval(start: u32, end: u32) -> Result<Interval, FieldError> {
        if end > MAX_TIME {
            return Err(FieldError {
                field: "end",
                value: end.to_string(),
                reason: format!("end {end} exceeds the time-unit domain (max {MAX_TIME})"),
            });
        }
        Interval::checked_new(start, end).ok_or_else(|| FieldError {
            field: "start",
            value: start.to_string(),
            reason: format!("start {start} exceeds end {end}"),
        })
    }
}

const HEADER: &str = "# esvm trace v1";
const SERVER_COLUMNS: &str = "id,cpu,mem,p_idle,p_peak,alpha";
const VM_COLUMNS: &str = "id,cpu,mem,start,end";

/// Serialises a problem to the trace format.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// use esvm_workload::trace;
///
/// let p = ProblemBuilder::new()
///     .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
///     .vm(Resources::new(1.0, 1.7), Interval::new(1, 9))
///     .build()?;
/// let text = trace::to_text(&p);
/// let q = trace::from_text(&text)?;
/// assert_eq!(p.vms(), q.vms());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_text(problem: &AllocationProblem) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("[servers]\n");
    out.push_str(SERVER_COLUMNS);
    out.push('\n');
    for s in problem.servers() {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            s.id().index(),
            s.capacity().cpu,
            s.capacity().mem,
            s.power().p_idle(),
            s.power().p_peak(),
            s.transition_cost(),
        ));
    }
    out.push_str("[vms]\n");
    out.push_str(VM_COLUMNS);
    out.push('\n');
    for v in problem.vms() {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            v.id().index(),
            v.demand().cpu,
            v.demand().mem,
            v.start(),
            v.end(),
        ));
    }
    out
}

/// Parses a problem from the trace format.
///
/// # Errors
///
/// Any [`TraceError`] variant; the line number in
/// [`TraceError::BadLine`] refers to the full input including comments.
pub fn from_text(text: &str) -> Result<AllocationProblem, TraceError> {
    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Servers,
        Vms,
    }

    let mut saw_header = false;
    let mut section = Section::Preamble;
    let mut expect_columns: Option<&str> = None;
    let mut servers: Vec<ServerSpec> = Vec::new();
    let mut vms: Vec<Vm> = Vec::new();
    let mut server_ids = std::collections::BTreeSet::new();
    let mut vm_ids = std::collections::BTreeSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line == HEADER {
            saw_header = true;
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[servers]" {
            section = Section::Servers;
            expect_columns = Some(SERVER_COLUMNS);
            continue;
        }
        if line == "[vms]" {
            section = Section::Vms;
            expect_columns = Some(VM_COLUMNS);
            continue;
        }
        if let Some(cols) = expect_columns.take() {
            if line != cols {
                return Err(TraceError::BadSection(format!(
                    "expected column header {cols:?}, found {line:?}"
                )));
            }
            continue;
        }

        let fields: Vec<&str> = line.split(',').collect();
        let bad = |reason: String| TraceError::BadLine {
            line: lineno,
            reason,
        };
        // The shared validators (`fields`) carry the reason; this
        // surface only pins the line number.
        let parse_id = |s: &str, what: &'static str| -> Result<u32, TraceError> {
            fields::parse_u32(what, s).map_err(|e| bad(e.reason))
        };
        let demand = |s: &str, what: &'static str| -> Result<f64, TraceError> {
            fields::parse_demand(what, s).map_err(|e| bad(e.reason))
        };
        match section {
            Section::Preamble => {
                return Err(TraceError::BadSection(format!(
                    "data before any section marker: {line:?}"
                )))
            }
            Section::Servers => {
                if fields.len() != 6 {
                    return Err(bad(format!("expected 6 fields, found {}", fields.len())));
                }
                let id = parse_id(fields[0], "id")?;
                if !server_ids.insert(id) {
                    return Err(TraceError::DuplicateId {
                        line: lineno,
                        what: "server",
                        id,
                    });
                }
                let cpu = demand(fields[1], "cpu")?;
                if cpu == 0.0 {
                    return Err(bad("server cpu capacity must be positive".to_owned()));
                }
                let mem = demand(fields[2], "mem")?;
                let p_idle = demand(fields[3], "p_idle")?;
                let p_peak = demand(fields[4], "p_peak")?;
                if p_peak < p_idle {
                    return Err(bad(format!(
                        "p_peak {p_peak} must be at least p_idle {p_idle}"
                    )));
                }
                let alpha = demand(fields[5], "alpha")?;
                servers.push(ServerSpec::new(
                    id,
                    Resources::new(cpu, mem),
                    PowerModel::new(p_idle, p_peak),
                    alpha,
                ));
            }
            Section::Vms => {
                if fields.len() != 5 {
                    return Err(bad(format!("expected 5 fields, found {}", fields.len())));
                }
                let id = parse_id(fields[0], "id")?;
                if !vm_ids.insert(id) {
                    return Err(TraceError::DuplicateId {
                        line: lineno,
                        what: "vm",
                        id,
                    });
                }
                let cpu = demand(fields[1], "cpu")?;
                let mem = demand(fields[2], "mem")?;
                let start = parse_id(fields[3], "start")?;
                let end = parse_id(fields[4], "end")?;
                let interval =
                    self::fields::checked_interval(start, end).map_err(|e| bad(e.reason))?;
                vms.push(Vm::new(id, Resources::new(cpu, mem), interval));
            }
        }
    }

    if !saw_header {
        return Err(TraceError::BadHeader);
    }
    Ok(AllocationProblem::new(servers, vms)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;

    #[test]
    fn round_trips_a_generated_workload() {
        let p = WorkloadConfig::new(40, 20).generate(13).unwrap();
        let text = to_text(&p);
        let q = from_text(&text).unwrap();
        assert_eq!(p.vms(), q.vms());
        assert_eq!(p.servers(), q.servers());
        assert_eq!(p.horizon(), q.horizon());
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let p = WorkloadConfig::new(3, 2).generate(1).unwrap();
        let text = to_text(&p);
        let noisy = text.replace("[vms]", "\n# vm section follows\n\n[vms]");
        let q = from_text(&noisy).unwrap();
        assert_eq!(p.vms(), q.vms());
    }

    #[test]
    fn missing_header_is_rejected() {
        let p = WorkloadConfig::new(2, 1).generate(0).unwrap();
        let text = to_text(&p).replace(HEADER, "# something else");
        assert_eq!(from_text(&text).unwrap_err(), TraceError::BadHeader);
    }

    #[test]
    fn wrong_column_header_is_rejected() {
        let p = WorkloadConfig::new(2, 1).generate(0).unwrap();
        let text = to_text(&p).replace(VM_COLUMNS, "id,cpu,mem");
        assert!(matches!(
            from_text(&text).unwrap_err(),
            TraceError::BadSection(_)
        ));
    }

    #[test]
    fn malformed_field_counts_are_rejected() {
        let text = format!("{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,1,1\n");
        match from_text(&text).unwrap_err() {
            TraceError::BadLine { line, .. } => assert_eq!(line, 4),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn non_numeric_field_is_rejected() {
        let text = format!("{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,x,1,1,2,0\n");
        assert!(matches!(
            from_text(&text).unwrap_err(),
            TraceError::BadLine { .. }
        ));
    }

    #[test]
    fn inverted_interval_is_rejected() {
        let text = format!(
            "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n0,1,1,9,3\n"
        );
        assert!(matches!(
            from_text(&text).unwrap_err(),
            TraceError::BadLine { .. }
        ));
    }

    #[test]
    fn data_before_section_is_rejected() {
        let text = format!("{HEADER}\n0,1,1,1,2,0\n");
        assert!(matches!(
            from_text(&text).unwrap_err(),
            TraceError::BadSection(_)
        ));
    }

    #[test]
    fn nan_and_negative_demands_are_rejected() {
        for bad_vm in ["0,NaN,1,1,3", "0,1,NaN,1,3", "0,-1,1,1,3", "0,1,-2,1,3", "0,inf,1,1,3"] {
            let text = format!(
                "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n{bad_vm}\n"
            );
            assert!(
                matches!(from_text(&text).unwrap_err(), TraceError::BadLine { line: 7, .. }),
                "{bad_vm} should be rejected"
            );
        }
    }

    #[test]
    fn hostile_server_records_are_rejected_not_panicked() {
        // Each of these would trip an assert in ServerSpec/PowerModel
        // if it reached construction.
        for bad_server in ["0,0,8,1,2,0", "0,4,8,NaN,2,0", "0,4,8,5,2,0", "0,4,8,1,2,-1"] {
            let text = format!("{HEADER}\n[servers]\n{SERVER_COLUMNS}\n{bad_server}\n");
            assert!(
                matches!(from_text(&text).unwrap_err(), TraceError::BadLine { line: 4, .. }),
                "{bad_server} should be rejected"
            );
        }
    }

    #[test]
    fn duplicate_ids_are_rejected_with_the_line_number() {
        let text = format!(
            "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n0,1,1,1,3\n0,1,1,4,6\n"
        );
        assert_eq!(
            from_text(&text).unwrap_err(),
            TraceError::DuplicateId {
                line: 8,
                what: "vm",
                id: 0
            }
        );
        let text =
            format!("{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n0,4,8,1,2,0\n");
        assert_eq!(
            from_text(&text).unwrap_err(),
            TraceError::DuplicateId {
                line: 5,
                what: "server",
                id: 0
            }
        );
    }

    #[test]
    fn non_integer_ids_and_times_are_rejected() {
        for bad_vm in ["1.5,1,1,1,3", "0,1,1,1.5,3", "0,1,1,1,3.5", "-1,1,1,1,3"] {
            let text = format!(
                "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n{bad_vm}\n"
            );
            assert!(
                matches!(from_text(&text).unwrap_err(), TraceError::BadLine { .. }),
                "{bad_vm} should be rejected"
            );
        }
    }

    #[test]
    fn out_of_domain_arrival_times_are_rejected_at_parse() {
        // An endpoint at u32::MAX would wrap the `end + 1` breakpoint
        // arithmetic deep inside the energy ledgers; it must die here
        // with a typed parse error, not corrupt a simulation later.
        let max = u32::MAX;
        for bad_vm in [
            format!("0,1,1,{max},{max}"),
            format!("0,1,1,1,{max}"),
        ] {
            let text = format!(
                "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n{bad_vm}\n"
            );
            match from_text(&text).unwrap_err() {
                TraceError::BadLine { line, reason } => {
                    assert_eq!(line, 7);
                    assert!(
                        reason.contains("time-unit domain"),
                        "unexpected reason: {reason}"
                    );
                }
                e => panic!("unexpected error {e}"),
            }
        }
        // The boundary itself is fine.
        let edge = esvm_simcore::MAX_TIME;
        let text = format!(
            "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n0,1,1,{edge},{edge}\n"
        );
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn invalid_instance_is_rejected() {
        // VM too large for the only server.
        let text = format!(
            "{HEADER}\n[servers]\n{SERVER_COLUMNS}\n0,4,8,1,2,0\n[vms]\n{VM_COLUMNS}\n0,9,9,1,3\n"
        );
        assert!(matches!(
            from_text(&text).unwrap_err(),
            TraceError::Invalid(_)
        ));
    }
}
