//! Seeded sampling primitives: exponential variates and Poisson arrival
//! processes.
//!
//! Implemented from first principles (inverse-CDF for the exponential,
//! exponential gaps for the Poisson process) so the workspace needs no
//! distribution crate; `rand` supplies only the uniform source.

use rand::Rng;

/// An exponential distribution with the given mean, sampled by inverse
/// CDF: `X = −mean · ln(1 − U)`, `U ~ Uniform[0, 1)`.
///
/// # Example
///
/// ```
/// use esvm_workload::dist::Exponential;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let exp = Exponential::with_mean(5.0);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates the distribution from its mean (`1/λ`).
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and positive, got {mean}"
        );
        Self { mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The rate `λ = 1/mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 − U ∈ (0, 1] avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -self.mean * (1.0 - u).ln()
    }

    /// Draws a variate rounded to a positive integer number of time
    /// units (`max(1, round(x))`). The paper's VM durations are integers
    /// ("the starting time and the finishing time of VMs are integer").
    pub fn sample_time_units<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let x = self.sample(rng).round();
        if x < 1.0 {
            1
        } else if x > u32::MAX as f64 {
            u32::MAX
        } else {
            x as u32
        }
    }
}

/// A homogeneous Poisson arrival process: inter-arrival gaps are i.i.d.
/// exponential with the given mean (Section IV-B1: "VM requests arrive
/// according to the Poisson process. The mean inter-arrival time varies
/// from 0.5 to 10 time units.").
///
/// # Example
///
/// ```
/// use esvm_workload::dist::PoissonProcess;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(3);
/// let arrivals = PoissonProcess::with_mean_interarrival(2.0).sample_n(5, &mut rng);
/// assert_eq!(arrivals.len(), 5);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    gap: Exponential,
}

impl PoissonProcess {
    /// Creates the process from the mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics unless the mean is finite and positive.
    pub fn with_mean_interarrival(mean: f64) -> Self {
        Self {
            gap: Exponential::with_mean(mean),
        }
    }

    /// The mean inter-arrival time.
    pub fn mean_interarrival(&self) -> f64 {
        self.gap.mean()
    }

    /// Samples the first `n` arrival instants (continuous, ascending,
    /// starting after 0).
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut t = 0.0;
        (0..n)
            .map(|_| {
                t += self.gap.sample(rng);
                t
            })
            .collect()
    }

    /// Samples `n` arrival instants rounded up to integer time units
    /// `≥ 1` (the simulator's discrete clock). Multiple arrivals may land
    /// in the same unit when the rate is high.
    pub fn sample_n_time_units<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        self.sample_n(n, rng)
            .into_iter()
            .map(|t| {
                let t = t.ceil();
                if t < 1.0 {
                    1
                } else if t > u32::MAX as f64 {
                    u32::MAX
                } else {
                    t as u32
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_is_close() {
        let exp = Exponential::with_mean(5.0);
        let mut r = rng(1);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn exponential_variance_is_mean_squared() {
        let exp = Exponential::with_mean(3.0);
        let mut r = rng(2);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| exp.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 9.0).abs() < 0.5, "sample variance {var}");
    }

    #[test]
    fn exponential_samples_are_nonnegative() {
        let exp = Exponential::with_mean(0.1);
        let mut r = rng(3);
        assert!((0..10_000).all(|_| exp.sample(&mut r) >= 0.0));
    }

    #[test]
    fn sample_time_units_is_at_least_one() {
        let exp = Exponential::with_mean(0.2);
        let mut r = rng(4);
        assert!((0..10_000).all(|_| exp.sample_time_units(&mut r) >= 1));
    }

    #[test]
    fn sample_time_units_mean_tracks_distribution_mean() {
        // For a mean well above 1 the rounding bias is small.
        let exp = Exponential::with_mean(10.0);
        let mut r = rng(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| u64::from(exp.sample_time_units(&mut r))).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "sample mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    fn poisson_arrivals_ascend_and_match_rate() {
        let p = PoissonProcess::with_mean_interarrival(2.0);
        let mut r = rng(6);
        let arrivals = p.sample_n(50_000, &mut r);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // n-th arrival ≈ n × mean gap.
        let last = *arrivals.last().unwrap();
        let expected = 50_000.0 * 2.0;
        assert!(
            (last - expected).abs() / expected < 0.02,
            "last arrival {last}, expected ≈ {expected}"
        );
    }

    #[test]
    fn discrete_arrivals_start_at_one_and_ascend() {
        let p = PoissonProcess::with_mean_interarrival(0.5);
        let mut r = rng(7);
        let arrivals = p.sample_n_time_units(1000, &mut r);
        assert!(arrivals[0] >= 1);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rate_is_reciprocal_of_mean() {
        let exp = Exponential::with_mean(4.0);
        assert!((exp.rate() - 0.25).abs() < 1e-12);
        assert_eq!(
            PoissonProcess::with_mean_interarrival(4.0).mean_interarrival(),
            4.0
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let exp = Exponential::with_mean(5.0);
        let a: Vec<f64> = {
            let mut r = rng(9);
            (0..100).map(|_| exp.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(9);
            (0..100).map(|_| exp.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
