//! # esvm-workload
//!
//! Workload generation for the reproduction of *"Energy Saving Virtual
//! Machine Allocation in Cloud Computing"* (Xie et al., ICDCSW 2013),
//! Section IV-B:
//!
//! * VM requests arrive according to a **Poisson process** (mean
//!   inter-arrival time 0.5–10 time units) and have **exponentially
//!   distributed** durations (mean 2/5/10 units) — [`dist`]; richer
//!   diurnal and bursty (MMPP-2) streams live in [`arrivals`];
//! * each VM's demand is drawn uniformly from the paper's **Table I**,
//!   nine Amazon-EC2-derived types — [`catalog::vm_types`];
//! * servers come from the paper's **Table II**, five hypothetical
//!   non-homogeneous types with 40–50 % idle-power fraction —
//!   [`catalog::server_types`];
//! * transition cost is `α_i = P_peak_i × transition time`
//!   (Section IV-B3, following Gandhi et al.'s observation that a waking
//!   server draws peak power).
//!
//! Everything is seeded and deterministic; [`trace`] round-trips problems
//! through a plain-text format for archival and cross-tool comparison.
//!
//! ## Example
//!
//! ```
//! use esvm_workload::WorkloadConfig;
//!
//! let problem = WorkloadConfig::new(100, 50)
//!     .mean_interarrival(4.0)
//!     .mean_duration(5.0)
//!     .transition_time(1.0)
//!     .generate(42)?;
//! assert_eq!(problem.vm_count(), 100);
//! assert_eq!(problem.server_count(), 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod arrivals;
pub mod catalog;
pub mod dist;
pub mod esvt;
pub mod trace;

mod generator;

pub use adversarial::AdversaryPreset;
pub use arrivals::ArrivalModel;
pub use catalog::{ServerType, VmClass, VmType};
pub use esvt::{from_esvt, to_esvt, BlockStats, EsvtWriter, ReadStats, TraceReader};
pub use generator::{GenerateError, WorkloadConfig};
