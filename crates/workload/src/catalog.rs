//! The paper's Table I (VM types) and Table II (server types).
//!
//! The OCR of the paper garbles the digits inside both tables, so the
//! concrete values here are reconstructions documented in DESIGN.md:
//!
//! * **Table I** "refer\[s\] to Amazon Elastic Compute Cloud" and has four
//!   *standard*, three *memory-intensive* and two *CPU-intensive* rows.
//!   We use the 2013-era EC2 catalog (m1, m2 and c1 families), which
//!   matches the surviving digits ("… 15" for the largest standard type,
//!   "2 7" → 20 CU / 7 GB for the largest CPU-intensive type).
//! * **Table II** follows the paper's stated construction rules: five
//!   types; the 60 CU / 68 GB type is "roughly equivalent to the blade
//!   server HP ProLiant BL460c G6"; idle power is 40–50 % of peak; power
//!   grows with capacity.

use esvm_simcore::{PowerModel, Resources, ServerSpec};
use serde::Serialize;
use std::fmt;

/// The workload class of a VM type (the three groups of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum VmClass {
    /// Balanced CPU/memory (EC2 m1 family).
    Standard,
    /// Memory-heavy (EC2 m2 family).
    MemoryIntensive,
    /// CPU-heavy (EC2 c1 family).
    CpuIntensive,
}

impl fmt::Display for VmClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmClass::Standard => "standard",
            VmClass::MemoryIntensive => "memory-intensive",
            VmClass::CpuIntensive => "cpu-intensive",
        };
        f.write_str(s)
    }
}

/// One row of Table I: a VM type with its resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VmType {
    /// EC2-style instance name.
    pub name: &'static str,
    /// Workload class (table section).
    pub class: VmClass,
    /// CPU demand in compute units.
    pub cpu: f64,
    /// Memory demand in GB.
    pub mem: f64,
}

impl VmType {
    /// The demand as a resource vector.
    pub fn demand(&self) -> Resources {
        Resources::new(self.cpu, self.mem)
    }
}

impl fmt::Display for VmType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {:.1} CU, {:.2} GB",
            self.name, self.class, self.cpu, self.mem
        )
    }
}

/// Table I — the nine VM types.
pub const VM_TYPES: [VmType; 9] = [
    VmType { name: "m1.small",   class: VmClass::Standard,        cpu: 1.0,  mem: 1.7 },
    VmType { name: "m1.medium",  class: VmClass::Standard,        cpu: 2.0,  mem: 3.75 },
    VmType { name: "m1.large",   class: VmClass::Standard,        cpu: 4.0,  mem: 7.5 },
    VmType { name: "m1.xlarge",  class: VmClass::Standard,        cpu: 8.0,  mem: 15.0 },
    VmType { name: "m2.xlarge",  class: VmClass::MemoryIntensive, cpu: 6.5,  mem: 17.1 },
    VmType { name: "m2.2xlarge", class: VmClass::MemoryIntensive, cpu: 13.0, mem: 34.2 },
    VmType { name: "m2.4xlarge", class: VmClass::MemoryIntensive, cpu: 26.0, mem: 68.4 },
    VmType { name: "c1.medium",  class: VmClass::CpuIntensive,    cpu: 5.0,  mem: 1.7 },
    VmType { name: "c1.xlarge",  class: VmClass::CpuIntensive,    cpu: 20.0, mem: 7.0 },
];

/// All nine VM types of Table I.
pub fn vm_types() -> &'static [VmType] {
    &VM_TYPES
}

/// The four *standard* VM types (Section IV-F restricts the workload to
/// these for Figs. 7–9).
pub fn standard_vm_types() -> Vec<VmType> {
    VM_TYPES
        .iter()
        .filter(|t| t.class == VmClass::Standard)
        .copied()
        .collect()
}

/// VM types of one class.
pub fn vm_types_of_class(class: VmClass) -> Vec<VmType> {
    VM_TYPES
        .iter()
        .filter(|t| t.class == class)
        .copied()
        .collect()
}

/// One row of Table II: a server type.
///
/// The transition cost is *not* part of the type: the paper derives it
/// per experiment as `α = P_peak × transition time` (Section IV-B3), so
/// it is supplied when the type is instantiated into a
/// [`ServerSpec`] via [`ServerType::to_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServerType {
    /// Type name ("type 1" … "type 5").
    pub name: &'static str,
    /// CPU capacity in compute units.
    pub cpu: f64,
    /// Memory capacity in GB.
    pub mem: f64,
    /// Idle power in watts.
    pub p_idle: f64,
    /// Peak power in watts.
    pub p_peak: f64,
}

impl ServerType {
    /// The capacity as a resource vector.
    pub fn capacity(&self) -> Resources {
        Resources::new(self.cpu, self.mem)
    }

    /// The affine power model.
    pub fn power(&self) -> PowerModel {
        PowerModel::new(self.p_idle, self.p_peak)
    }

    /// `P_idle / P_peak` (the paper keeps this in 40–50 %).
    pub fn idle_fraction(&self) -> f64 {
        self.p_idle / self.p_peak
    }

    /// Instantiates a concrete server with id `id` and transition time
    /// `transition_time` (in time units): `α = P_peak × transition_time`.
    pub fn to_spec(&self, id: u32, transition_time: f64) -> ServerSpec {
        ServerSpec::new(
            id,
            self.capacity(),
            self.power(),
            self.p_peak * transition_time,
        )
    }
}

impl fmt::Display for ServerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} CU, {:.0} GB, P_idle {:.0} W, P_peak {:.0} W ({:.0}%)",
            self.name,
            self.cpu,
            self.mem,
            self.p_idle,
            self.p_peak,
            self.idle_fraction() * 100.0
        )
    }
}

/// Table II — the five server types.
///
/// Power scales roughly proportionally with capacity (`P¹ =
/// (P_peak − P_idle)/C_cpu ≈ 2.6–2.8 W/CU for every type, marginally
/// *best* on the smallest type). This is the regime the paper's
/// Section III analysis assumes: "The servers with small resource
/// capacity usually consume lower power than those with large resource
/// capacity. Our algorithm consolidates VMs on servers with small
/// resource capacity" — consolidation onto small servers must actually
/// be energy-optimal. (An earlier reconstruction with strongly
/// sub-linear power — big servers 4× more efficient per compute unit —
/// inverts the paper's economics and makes the heuristic *lose* to FFPS
/// at high arrival rates; see DESIGN.md.) The 60 CU type matches the HP
/// ProLiant BL460c G6 anchor at realistic ~135 W idle / ~300 W peak.
pub const SERVER_TYPES: [ServerType; 5] = [
    ServerType { name: "type 1", cpu: 16.0,  mem: 32.0,  p_idle: 38.0,  p_peak: 80.0 },
    ServerType { name: "type 2", cpu: 30.0,  mem: 48.0,  p_idle: 68.0,  p_peak: 150.0 },
    ServerType { name: "type 3", cpu: 60.0,  mem: 68.0,  p_idle: 135.0, p_peak: 300.0 },
    ServerType { name: "type 4", cpu: 90.0,  mem: 102.0, p_idle: 202.0, p_peak: 450.0 },
    ServerType { name: "type 5", cpu: 120.0, mem: 136.0, p_idle: 270.0, p_peak: 600.0 },
];

/// All five server types of Table II.
pub fn server_types() -> &'static [ServerType] {
    &SERVER_TYPES
}

/// Server types 1–3 only (used by Figs. 7–9).
pub fn server_types_1_3() -> Vec<ServerType> {
    SERVER_TYPES[..3].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_papers_row_counts() {
        assert_eq!(vm_types().len(), 9);
        assert_eq!(vm_types_of_class(VmClass::Standard).len(), 4);
        assert_eq!(vm_types_of_class(VmClass::MemoryIntensive).len(), 3);
        assert_eq!(vm_types_of_class(VmClass::CpuIntensive).len(), 2);
        assert_eq!(standard_vm_types().len(), 4);
    }

    #[test]
    fn surviving_ocr_digits_match() {
        // "standard type … 15": largest standard type has 15 GB.
        let largest_standard = vm_types_of_class(VmClass::Standard)
            .into_iter()
            .max_by(|a, b| a.mem.total_cmp(&b.mem))
            .unwrap();
        assert_eq!(largest_standard.mem, 15.0);
        // "CPU-intensive type 2 7" → 20 CU / 7 GB.
        let largest_cpu = vm_types_of_class(VmClass::CpuIntensive)
            .into_iter()
            .max_by(|a, b| a.cpu.total_cmp(&b.cpu))
            .unwrap();
        assert_eq!((largest_cpu.cpu, largest_cpu.mem), (20.0, 7.0));
    }

    #[test]
    fn memory_intensive_types_have_high_mem_per_cpu() {
        for t in vm_types_of_class(VmClass::MemoryIntensive) {
            assert!(t.mem / t.cpu > 2.0, "{t}");
        }
        for t in vm_types_of_class(VmClass::CpuIntensive) {
            assert!(t.mem / t.cpu < 0.5, "{t}");
        }
    }

    #[test]
    fn table2_has_five_monotone_types() {
        let types = server_types();
        assert_eq!(types.len(), 5);
        for w in types.windows(2) {
            // "server power consumption increases as resource capacity
            // increases" (Section IV-B2, rule 3).
            assert!(w[0].cpu < w[1].cpu);
            assert!(w[0].mem < w[1].mem);
            assert!(w[0].p_idle < w[1].p_idle);
            assert!(w[0].p_peak < w[1].p_peak);
        }
    }

    #[test]
    fn idle_fraction_is_40_to_50_percent() {
        for t in server_types() {
            let f = t.idle_fraction();
            assert!((0.40..=0.50).contains(&f), "{t}: {f}");
        }
    }

    #[test]
    fn hp_proliant_anchor_type_exists() {
        // Rule 1: a 60 CU / 68 GB type anchors the table.
        assert!(server_types().iter().any(|t| t.cpu == 60.0 && t.mem == 68.0));
    }

    #[test]
    fn every_vm_type_fits_the_largest_server() {
        let big = SERVER_TYPES[4].capacity();
        for t in vm_types() {
            assert!(t.demand().fits_within(big), "{t}");
        }
    }

    #[test]
    fn every_standard_vm_fits_the_smallest_server() {
        // Figs. 7–9 run standard VMs on types 1–3; even type 1 must host
        // the largest standard VM.
        let small = SERVER_TYPES[0].capacity();
        for t in standard_vm_types() {
            assert!(t.demand().fits_within(small), "{t}");
        }
    }

    #[test]
    fn to_spec_derives_alpha_from_peak_power() {
        let spec = SERVER_TYPES[0].to_spec(3, 1.5);
        assert_eq!(spec.id().index(), 3);
        assert_eq!(spec.transition_cost(), 80.0 * 1.5);
        assert_eq!(spec.capacity(), Resources::new(16.0, 32.0));
        assert_eq!(spec.power().p_idle(), 38.0);
    }

    #[test]
    fn display_formats() {
        assert!(VM_TYPES[0].to_string().contains("m1.small"));
        assert!(SERVER_TYPES[2].to_string().contains("45%"));
        assert_eq!(VmClass::MemoryIntensive.to_string(), "memory-intensive");
    }
}
