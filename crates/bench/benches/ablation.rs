//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! transition-cost awareness in MIEC's scoring, offline local-search
//! refinement, and the live-migration consolidation post-pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_core::{Allocator, AllocatorKind, Consolidator};
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .generate(42)
        .expect("instance");

    // Print the quality ablation once: cost of each pipeline.
    println!("\n--- ablation costs on one seeded instance ---");
    for kind in [
        AllocatorKind::Miec,
        AllocatorKind::MiecNoAlpha,
        AllocatorKind::MiecLocalSearch,
        AllocatorKind::Ffps,
        AllocatorKind::FfpsLocalSearch,
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let a = kind.build().allocate(&problem, &mut rng).unwrap();
        println!("{:<14} {:>10.0}", kind.name(), a.total_cost());
    }
    {
        let mut rng = StdRng::seed_from_u64(7);
        let base = AllocatorKind::Miec
            .build()
            .allocate(&problem, &mut rng)
            .unwrap();
        let audit = Consolidator::new(5.0)
            .consolidate(&base)
            .unwrap()
            .audit()
            .unwrap();
        println!(
            "{:<14} {:>10.0} ({} migrations)",
            "miec+consol.", audit.total_cost, audit.migrations
        );
    }

    let mut group = c.benchmark_group("ablation_runtime");
    group.sample_size(10);
    for kind in [
        AllocatorKind::Miec,
        AllocatorKind::MiecNoAlpha,
        AllocatorKind::MiecLocalSearch,
    ] {
        let allocator = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(
                    allocator
                        .allocate(black_box(&problem), &mut rng)
                        .unwrap()
                        .total_cost(),
                )
            })
        });
    }
    group.bench_function("miec_plus_consolidation", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let base = AllocatorKind::Miec
            .build()
            .allocate(&problem, &mut rng)
            .unwrap();
        let consolidator = Consolidator::new(5.0);
        b.iter(|| {
            black_box(
                consolidator
                    .consolidate(black_box(&base))
                    .unwrap()
                    .audit()
                    .unwrap()
                    .total_cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
