//! Regenerates the paper's Fig. 4 in quick mode and benchmarks its
//! representative sweep point (load-axis variant of the Fig. 2 sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    print_regenerated("Fig. 4", esvm_exper::experiments::fig4);
    let config = representative_config(100);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
