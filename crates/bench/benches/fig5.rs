//! Regenerates the paper's Fig. 5 in quick mode and benchmarks its
//! representative sweep point (transition time 3 min).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    print_regenerated("Fig. 5", esvm_exper::experiments::fig5);
    let config = representative_config(100).transition_time(3.0);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
