//! Trace-pipeline benchmark: columnar ESVT ingestion against the text
//! parser, with the measurements recorded in `BENCH_trace.json` at the
//! repo root (the PR-3 regression-gate pattern).
//!
//! Three claims are measured and pinned:
//!
//! * **Ingest throughput** — streaming a trace from disk through
//!   [`esvm_workload::esvt::TraceReader`] vs `read_to_string` +
//!   `trace::from_text`. The committed `ingest_speedup` must stay ≥ 5×
//!   (hard-asserted when `ESVM_REQUIRE_TRACE_SPEEDUP=1`), and the
//!   fresh esvt/text ratio is regression-gated against the committed
//!   one — ratios survive machine-speed drift, absolute seconds don't.
//! * **O(live) memory** — `ReadStats::peak_resident` equals the block
//!   length at 100k *and* (opt-in) 1M rows: the resident set does not
//!   grow with the trace.
//! * **Query pruning** — an `esvm query` start-predicate over the same
//!   file decodes only the tail blocks; the skip fraction is recorded.
//!
//! The 1M-row points take a while to generate and are opt-in via
//! `ESVM_SCALE_BENCH=1`; without it the committed values are carried
//! forward so the record never loses its scale columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_bench::{assert_no_regression, committed_bench_field, time_pair_best};
use esvm_workload::{esvt, trace, WorkloadConfig};
use std::hint::black_box;
use std::path::PathBuf;

const ROWS: usize = 100_000;
const SERVERS: usize = 5_000;
const SEED: u64 = 1;

fn config(rows: usize, servers: usize) -> WorkloadConfig {
    WorkloadConfig::new(rows, servers)
        .mean_interarrival(0.05)
        .mean_duration(5.0)
}

struct Staged {
    text_path: PathBuf,
    esvt_path: PathBuf,
    text_bytes: u64,
    esvt_bytes: u64,
}

/// Writes one workload to disk in both formats. The ESVT side goes
/// through the streaming generator (never materialising the VM list),
/// the text side through `generate` + `to_text`; the two encode the
/// identical instance (proven bit-for-bit in the workload tests).
fn stage(rows: usize, servers: usize, tag: &str) -> Staged {
    let dir = std::env::temp_dir();
    let text_path = dir.join(format!("esvm-bench-{tag}-{rows}.trace"));
    let esvt_path = dir.join(format!("esvm-bench-{tag}-{rows}.esvt"));
    let cfg = config(rows, servers);
    cfg.generate_esvt_file(SEED, &esvt_path).expect("stream-generate esvt");
    let problem = cfg.generate(SEED).expect("generate");
    std::fs::write(&text_path, trace::to_text(&problem)).expect("write text");
    let meta = |p: &PathBuf| std::fs::metadata(p).expect("staged file").len();
    Staged {
        text_bytes: meta(&text_path),
        esvt_bytes: meta(&esvt_path),
        text_path,
        esvt_path,
    }
}

/// Full text ingest: bytes off disk → validated `AllocationProblem`.
fn ingest_text(path: &PathBuf) -> f64 {
    let text = std::fs::read_to_string(path).expect("read text");
    let problem = trace::from_text(&text).expect("parse text");
    problem.vm_count() as f64
}

/// Streaming ESVT ingest: bytes off disk → every record decoded and
/// validated, one block resident at a time. This is the allocator-feed
/// path (`stream_records`-shaped), the fair counterpart of a full text
/// parse; it also hard-checks the O(live) ceiling on every call.
fn ingest_esvt_streaming(path: &PathBuf) -> f64 {
    let mut reader = esvt::TraceReader::open(path).expect("open esvt");
    let block_len = reader.block_len();
    let mut n = 0u64;
    let stats = reader
        .for_each_batch(|batch| n += batch.len() as u64)
        .expect("stream esvt");
    assert!(
        stats.peak_resident <= block_len,
        "peak resident {} exceeded the block length {}",
        stats.peak_resident,
        block_len
    );
    n as f64
}

/// Materialising ESVT ingest: same bytes, but collected into a
/// validated `AllocationProblem` like the text path.
fn ingest_esvt_problem(path: &PathBuf) -> f64 {
    let problem = esvt::read_esvt_file(path).expect("read esvt");
    problem.vm_count() as f64
}

/// Times one staged size and returns
/// `(text_s, esvt_stream_s, esvt_problem_s, ratio_noise, peak_resident)`.
fn measure(staged: &Staged, rounds: usize) -> (f64, f64, f64, f64, usize) {
    let pair = time_pair_best(
        rounds,
        || ingest_text(&staged.text_path),
        || ingest_esvt_streaming(&staged.esvt_path),
    );
    let mut problem_s = f64::INFINITY;
    for _ in 0..rounds {
        let start = std::time::Instant::now();
        black_box(ingest_esvt_problem(&staged.esvt_path));
        problem_s = problem_s.min(start.elapsed().as_secs_f64());
    }
    let mut reader = esvt::TraceReader::open(&staged.esvt_path).expect("open esvt");
    let stats = reader.for_each_batch(|_| ()).expect("stream esvt");
    (pair.best_f, pair.best_g, problem_s, pair.ratio_noise, stats.peak_resident)
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    // Baselines are read before this run overwrites the record.
    let committed_ratio = committed_bench_field(path, "esvt_stream_seconds")
        .zip(committed_bench_field(path, "text_parse_seconds"))
        .map(|(e, t)| e / t);

    let staged = stage(ROWS, SERVERS, "main");

    let mut group = c.benchmark_group(format!("trace_ingest_{ROWS}_rows"));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("text_from_disk"), |b| {
        b.iter(|| black_box(ingest_text(&staged.text_path)))
    });
    group.bench_function(BenchmarkId::from_parameter("esvt_stream_from_disk"), |b| {
        b.iter(|| black_box(ingest_esvt_streaming(&staged.esvt_path)))
    });
    group.bench_function(BenchmarkId::from_parameter("esvt_to_problem"), |b| {
        b.iter(|| black_box(ingest_esvt_problem(&staged.esvt_path)))
    });
    group.finish();

    let (text_s, esvt_s, esvt_problem_s, noise, peak) = measure(&staged, 7);
    let speedup = text_s / esvt_s;
    let size_ratio = staged.esvt_bytes as f64 / staged.text_bytes as f64;
    println!(
        "trace ingest at {ROWS} rows: text {text_s:.4}s, esvt stream {esvt_s:.4}s \
         ({speedup:.1}x), esvt→problem {esvt_problem_s:.4}s; \
         esvt file is {:.0}% of the text size; peak resident {peak} records",
        size_ratio * 100.0
    );

    // Regression gate on the esvt/text ratio (lower is better), with
    // the margin widened by the noise observed in this very run.
    assert_no_regression(
        "esvt/text ingest ratio",
        esvt_s / text_s,
        committed_ratio,
        0.25 + noise,
    );
    // The headline claim, asserted hard where the environment says so
    // (CI sets ESVM_REQUIRE_TRACE_SPEEDUP=1 on the trace-pipeline job).
    if std::env::var("ESVM_REQUIRE_TRACE_SPEEDUP").as_deref() == Ok("1") {
        assert!(
            speedup >= 5.0,
            "streaming ESVT ingest is only {speedup:.2}x the text parser (need ≥5x)"
        );
    }

    // Query pruning over the same file: count the arrivals in the last
    // tenth of the horizon — the engine must skip the leading blocks.
    let max_start = {
        let mut reader = esvt::TraceReader::open(&staged.esvt_path).expect("open esvt");
        let mut max = 0u32;
        let mut buf = Vec::new();
        while let Some(stats) = reader.next_batch_into(&mut buf).expect("scan") {
            max = max.max(stats.max_start);
        }
        max
    };
    let cutoff = u64::from(max_start) * 9 / 10;
    let plan = format!(
        "load {} | filter start >= {cutoff} | agg count",
        staged.esvt_path.display()
    );
    let start = std::time::Instant::now();
    let rendered = esvm_exper::query::run_query(&plan).expect("query");
    let query_s = start.elapsed().as_secs_f64();
    let footer = rendered.lines().last().unwrap_or("").to_owned();
    println!("query tail-count in {query_s:.4}s: {footer}");
    let skipped = footer
        .split(" skipped")
        .next()
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.0);
    let blocks = (ROWS as f64 / esvt::DEFAULT_BLOCK_LEN as f64).ceil();
    let skip_fraction = skipped / blocks;
    assert!(
        skipped > 0.0,
        "the tail query decoded every block — min/max pruning is not engaging"
    );

    // Scale point: 1M rows. Opt-in; carried forward otherwise.
    let scale_bench = std::env::var("ESVM_SCALE_BENCH").as_deref() == Ok("1");
    const SCALE_ROWS: usize = 1_000_000;
    let scale = if scale_bench {
        let staged = stage(SCALE_ROWS, 50_000, "scale");
        let (t, e, p, _, peak) = measure(&staged, 2);
        assert_eq!(
            peak,
            esvt::DEFAULT_BLOCK_LEN,
            "1M-row peak resident must equal the block length"
        );
        std::fs::remove_file(&staged.text_path).ok();
        std::fs::remove_file(&staged.esvt_path).ok();
        Some((t, e, p, peak))
    } else {
        println!("1M-row scale point skipped (set ESVM_SCALE_BENCH=1); carrying committed values forward");
        committed_bench_field(path, "scale_1m_text_parse_seconds")
            .zip(committed_bench_field(path, "scale_1m_esvt_stream_seconds"))
            .zip(committed_bench_field(path, "scale_1m_esvt_problem_seconds"))
            .zip(committed_bench_field(path, "scale_1m_peak_resident"))
            .map(|(((t, e), p), peak)| (t, e, p, peak as usize))
    };
    let scale_json = match scale {
        Some((t, e, p, peak)) => format!(
            ",\n  \"scale_1m_rows\": {SCALE_ROWS},\n  \"scale_1m_text_parse_seconds\": {t:.6},\n  \"scale_1m_esvt_stream_seconds\": {e:.6},\n  \"scale_1m_esvt_problem_seconds\": {p:.6},\n  \"scale_1m_ingest_speedup\": {:.2},\n  \"scale_1m_peak_resident\": {peak}",
            t / e
        ),
        None => String::new(),
    };

    let json = format!(
        "{{\n  \"benchmark\": \"trace_pipeline\",\n  \"rows\": {ROWS},\n  \"servers\": {SERVERS},\n  \"workload_seed\": {SEED},\n  \"text_bytes\": {},\n  \"esvt_bytes\": {},\n  \"esvt_size_ratio\": {size_ratio:.4},\n  \"text_parse_seconds\": {text_s:.6},\n  \"esvt_stream_seconds\": {esvt_s:.6},\n  \"esvt_problem_seconds\": {esvt_problem_s:.6},\n  \"ingest_speedup\": {speedup:.2},\n  \"peak_resident\": {peak},\n  \"block_len\": {},\n  \"query_tail_seconds\": {query_s:.6},\n  \"query_blocks_skipped_fraction\": {skip_fraction:.4}{scale_json}\n}}\n",
        staged.text_bytes,
        staged.esvt_bytes,
        esvt::DEFAULT_BLOCK_LEN,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
    std::fs::remove_file(&staged.text_path).ok();
    std::fs::remove_file(&staged.esvt_path).ok();
}

criterion_group!(benches, bench_trace_pipeline);
criterion_main!(benches);
