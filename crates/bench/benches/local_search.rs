//! Offline-refinement benchmark: delta-scored local search and
//! consolidation vs their retained clone-and-rescan reference
//! implementations, at a 500-VM / 100-server scale point. Records the
//! measured speedups and equivalence flags in `BENCH_localsearch.json`
//! at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_bench::{assert_no_regression, committed_bench_field, time_best, time_pair_best};
use esvm_core::{Allocator, Consolidator, Ffps, LocalSearch, SearchMove};
use esvm_obs::{DiscardSink, MetricsRegistry};
use esvm_simcore::VmId;
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Same accepted decision, ignoring the recorded score (the two
/// evaluators' arithmetic differs in the last ulps).
fn same_decision(a: &SearchMove, b: &SearchMove) -> bool {
    match (a, b) {
        (
            SearchMove::Relocate { vm, from, to, .. },
            SearchMove::Relocate { vm: v2, from: f2, to: t2, .. },
        ) => vm == v2 && from == f2 && to == t2,
        (
            SearchMove::Swap { a: a1, b: b1, server_a: sa1, server_b: sb1, .. },
            SearchMove::Swap { a: a2, b: b2, server_a: sa2, server_b: sb2, .. },
        ) => a1 == a2 && b1 == b2 && sa1 == sa2 && sb1 == sb2,
        _ => false,
    }
}

/// 500 VMs on 100 servers: refine an FFPS allocation with the
/// delta-scored search (criterion timing), then compare against the
/// clone-and-rescan reference for both time and trajectory, run the same
/// comparison for the consolidation pass, and write the measurements to
/// `BENCH_localsearch.json`.
fn bench_local_search_at_scale(c: &mut Criterion) {
    const VMS: usize = 500;
    const SERVERS: usize = 100;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_localsearch.json");
    // Read the committed baselines before this run overwrites the record.
    // The gates compare reference-normalized ratios, so machine-speed
    // drift between the recording and the checking run cancels out.
    let committed_ratio = committed_bench_field(path, "optimised_seconds")
        .zip(committed_bench_field(path, "reference_seconds"))
        .map(|(o, r)| o / r);
    let committed_consolidation_ratio =
        committed_bench_field(path, "consolidation_optimised_seconds")
            .zip(committed_bench_field(path, "consolidation_reference_seconds"))
            .map(|(o, r)| o / r);
    let problem = WorkloadConfig::new(VMS, SERVERS)
        .mean_interarrival(4.0)
        .generate(1)
        .expect("instance");
    let mut rng = StdRng::seed_from_u64(7);
    let base = Ffps::new().allocate(&problem, &mut rng).expect("base allocation");

    let mut group = c.benchmark_group("local_search_500vms_100servers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("optimised"), |b| {
        b.iter(|| {
            let refined = LocalSearch::new().refine(black_box(&base)).unwrap();
            black_box(refined.total_cost())
        })
    });
    // Metrics-on scale point: the same search with counters and
    // histograms recording (events discarded).
    group.bench_function(BenchmarkId::from_parameter("instrumented"), |b| {
        b.iter(|| {
            let metrics = MetricsRegistry::new();
            let (refined, _) = LocalSearch::new()
                .refine_observed(black_box(&base), &mut DiscardSink, &metrics)
                .unwrap();
            black_box(refined.total_cost())
        })
    });
    group.finish();

    // Refinement equivalence: the delta-scored search must walk the same
    // first-improvement trajectory as the reference (up to FP ties at
    // the acceptance threshold, which these instances do not exhibit).
    let (fast, fast_moves) = LocalSearch::new().refine_traced(&base).unwrap();
    let (slow, slow_moves) = LocalSearch::reference().refine_traced(&base).unwrap();
    let trajectory_equivalent = fast_moves.len() == slow_moves.len()
        && fast_moves
            .iter()
            .zip(&slow_moves)
            .all(|(a, b)| same_decision(a, b));
    let placements_identical = fast.placement() == slow.placement();
    let rel = (fast.total_cost() - slow.total_cost()).abs() / slow.total_cost();
    assert!(
        rel < 1e-6,
        "optimised and reference refinement costs diverged: rel diff {rel:e}"
    );
    let improvement = 1.0 - fast.total_cost() / base.total_cost();

    // One instrumented run: the move-scan counters that characterise
    // this instance, plus a decision-equivalence check.
    let search_metrics = MetricsRegistry::new();
    let (observed, observed_moves) = LocalSearch::new()
        .refine_observed(&base, &mut DiscardSink, &search_metrics)
        .unwrap();
    assert_eq!(
        observed.placement(),
        fast.placement(),
        "instrumentation changed local-search placements at scale"
    );
    assert_eq!(observed_moves.len(), fast_moves.len());
    let relocates_considered = search_metrics.counter("local_search.relocates_considered");
    let swaps_considered = search_metrics.counter("local_search.swaps_considered");
    let spec_class_pruned = search_metrics.counter("local_search.spec_class_pruned");
    let swap_fastpath_hits = search_metrics.counter("local_search.swap_fastpath_hits");

    // Optimised and reference timed interleaved: their ratio is what
    // the regression gate compares across runs.
    let pair = time_pair_best(
        6,
        || LocalSearch::new().refine(&base).unwrap().total_cost(),
        || LocalSearch::reference().refine(&base).unwrap().total_cost(),
    );
    let (optimised_s, reference_s) = (pair.best_f, pair.best_g);
    let instrumented_s = time_best(7, || {
        let metrics = MetricsRegistry::new();
        let (refined, _) = LocalSearch::new()
            .refine_observed(&base, &mut DiscardSink, &metrics)
            .unwrap();
        refined.total_cost()
    });
    let speedup = reference_s / optimised_s;
    let instrumentation_overhead = instrumented_s / optimised_s - 1.0;
    println!(
        "local search @ {VMS} VMs / {SERVERS} servers: optimised {optimised_s:.3} s, \
         instrumented {instrumented_s:.3} s ({:+.1}%), reference {reference_s:.3} s, \
         {speedup:.1}x ({} moves, {:.1}% saved)",
        instrumentation_overhead * 100.0,
        fast_moves.len(),
        improvement * 100.0
    );
    // 5% acceptance margin widened by the ratio noise this run observed
    // (per-round spread of optimised/reference).
    assert_no_regression(
        "local search optimised/reference ratio (no-op sink)",
        optimised_s / reference_s,
        committed_ratio,
        0.05 + pair.ratio_noise,
    );

    // Consolidation pass, same treatment.
    let fast_schedule = Consolidator::new(2.0).consolidate(&base).unwrap();
    let slow_schedule = Consolidator::reference(2.0).consolidate(&base).unwrap();
    let schedules_identical = (0..problem.vm_count()).all(|j| {
        fast_schedule.pieces_of(VmId(j as u32)) == slow_schedule.pieces_of(VmId(j as u32))
    });
    // Even when a tied greedy decision lets the schedules part, the two
    // passes must save essentially the same energy.
    let fast_cost = fast_schedule.audit().unwrap().total_cost;
    let slow_cost = slow_schedule.audit().unwrap().total_cost;
    let consolidation_rel = (fast_cost - slow_cost).abs() / slow_cost;
    assert!(
        consolidation_rel < 1e-6,
        "optimised and reference consolidation costs diverged: rel diff {consolidation_rel:e}"
    );
    let consolidation_pair = time_pair_best(
        11,
        || {
            Consolidator::new(2.0)
                .consolidate(&base)
                .unwrap()
                .audit()
                .unwrap()
                .total_cost
        },
        || {
            Consolidator::reference(2.0)
                .consolidate(&base)
                .unwrap()
                .audit()
                .unwrap()
                .total_cost
        },
    );
    let (consolidation_optimised_s, consolidation_reference_s) =
        (consolidation_pair.best_f, consolidation_pair.best_g);
    let consolidation_speedup = consolidation_reference_s / consolidation_optimised_s;
    println!(
        "consolidation @ {VMS} VMs / {SERVERS} servers: optimised {consolidation_optimised_s:.3} s, \
         reference {consolidation_reference_s:.3} s, {consolidation_speedup:.1}x"
    );
    assert_no_regression(
        "consolidation optimised/reference ratio (no-op sink)",
        consolidation_optimised_s / consolidation_reference_s,
        committed_consolidation_ratio,
        0.05 + consolidation_pair.ratio_noise,
    );

    // Instrumented consolidation run for the eviction counters.
    let consolidator_metrics = MetricsRegistry::new();
    Consolidator::new(2.0)
        .consolidate_observed(&base, &mut DiscardSink, &consolidator_metrics)
        .unwrap();
    let evictions_committed =
        consolidator_metrics.counter("consolidator.evictions_committed");
    let consolidator_migrations = consolidator_metrics.counter("consolidator.migrations");

    let json = format!(
        "{{\n  \"benchmark\": \"local_search_refinement\",\n  \"vms\": {VMS},\n  \"servers\": {SERVERS},\n  \"workload_seed\": 1,\n  \"mean_interarrival\": 4.0,\n  \"optimised_seconds\": {optimised_s:.6},\n  \"instrumented_seconds\": {instrumented_s:.6},\n  \"instrumentation_overhead\": {instrumentation_overhead:.4},\n  \"reference_seconds\": {reference_s:.6},\n  \"speedup\": {speedup:.2},\n  \"moves_accepted\": {moves},\n  \"relocates_considered\": {relocates_considered},\n  \"swaps_considered\": {swaps_considered},\n  \"spec_class_pruned\": {spec_class_pruned},\n  \"swap_fastpath_hits\": {swap_fastpath_hits},\n  \"refinement_improvement\": {improvement:.6},\n  \"trajectory_equivalent\": {trajectory_equivalent},\n  \"placements_identical\": {placements_identical},\n  \"consolidation_optimised_seconds\": {consolidation_optimised_s:.6},\n  \"consolidation_reference_seconds\": {consolidation_reference_s:.6},\n  \"consolidation_speedup\": {consolidation_speedup:.2},\n  \"consolidator_evictions_committed\": {evictions_committed},\n  \"consolidator_migrations\": {consolidator_migrations},\n  \"consolidation_schedules_identical\": {schedules_identical},\n  \"consolidation_cost_rel_diff\": {consolidation_rel:.3e}\n}}\n",
        moves = fast_moves.len(),
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_local_search_at_scale);
criterion_main!(benches);
