//! Benchmarks of the exact-solver substrate: simplex on the LP
//! relaxation and full branch-and-bound on the Section II MILP.

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_ilp::{solve_lp, Formulation};
use esvm_workload::WorkloadConfig;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let problem = WorkloadConfig::new(4, 2)
        .mean_interarrival(2.0)
        .mean_duration(3.0)
        .vm_types(esvm_workload::catalog::standard_vm_types())
        .generate(0)
        .expect("instance");
    let formulation = Formulation::new(&problem);
    let (nx, ny, nz) = formulation.var_counts();
    println!(
        "exact instance: {nx} x-vars, {ny} y-vars, {nz} z-vars, {} rows",
        formulation.lp().num_constraints()
    );

    let mut group = c.benchmark_group("ilp");
    group.sample_size(20);
    group.bench_function("lp_relaxation", |b| {
        b.iter(|| black_box(solve_lp(formulation.lp()).unwrap().objective))
    });
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| black_box(formulation.solve().unwrap().objective))
    });
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
