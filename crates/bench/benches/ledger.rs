//! Micro-benchmarks of the `ServerLedger` hot path: capacity checks,
//! commits, and candidate scoring at 10 / 100 / 1000 resident segments.
//!
//! `incremental_cost` (delta-based, no clone) is benchmarked against
//! `reference_incremental_cost` (the original clone-and-rescan) at each
//! size; the gap between them is the per-candidate saving the MIEC scan
//! collects once per server per VM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_simcore::{Interval, PowerModel, Resources, ServerLedger, ServerSpec, Vm};
use std::hint::black_box;

fn spec() -> ServerSpec {
    ServerSpec::new(
        0,
        Resources::new(1e9, 1e9),
        PowerModel::new(100.0, 300.0),
        250.0,
    )
}

/// VMs at `[4k, 4k+2]` leave a one-unit gap between consecutive
/// segments, so a ledger hosting `n` of them holds `n` resident segments
/// and `n − 1` interior gaps.
fn resident_vms(n: usize) -> Vec<Vm> {
    (0..n)
        .map(|k| {
            Vm::new(
                k as u32,
                Resources::new(1.0, 1.0),
                Interval::with_len(4 * k as u32, 3),
            )
        })
        .collect()
}

fn ledger_with(n: usize) -> ServerLedger {
    let mut ledger = ServerLedger::new(spec());
    for vm in resident_vms(n) {
        ledger.host(&vm);
    }
    ledger
}

fn bench_ledger(c: &mut Criterion) {
    for n in [10usize, 100, 1000] {
        let ledger = ledger_with(n);
        // Probe in the middle of the span, splitting one interior gap —
        // the common shape during a MIEC scan.
        let mid = 4 * (n as u32 / 2) + 3;
        let probe = Vm::new(n as u32, Resources::new(1.0, 1.0), Interval::new(mid, mid));

        // The decomposition must reproduce cost() bit for bit (it is
        // computed from the same integer gap caches).
        let breakdown = ledger.energy_breakdown();
        assert_eq!(
            (breakdown.run + breakdown.idle + breakdown.transition).to_bits(),
            ledger.cost().to_bits(),
            "energy decomposition diverged from cost() at {n} segments"
        );

        let mut group = c.benchmark_group(format!("ledger_{n}_segments"));
        group.sample_size(20);
        group.bench_function(BenchmarkId::from_parameter("fits"), |b| {
            b.iter(|| black_box(ledger.fits(black_box(&probe))))
        });
        group.bench_function(BenchmarkId::from_parameter("energy_breakdown"), |b| {
            b.iter(|| black_box(ledger.energy_breakdown()))
        });
        group.bench_function(BenchmarkId::from_parameter("incremental_cost"), |b| {
            b.iter(|| black_box(ledger.incremental_cost(black_box(&probe))))
        });
        group.bench_function(
            BenchmarkId::from_parameter("reference_incremental_cost"),
            |b| b.iter(|| black_box(ledger.reference_incremental_cost(black_box(&probe)))),
        );
        // Amortised host cost: rebuild the whole ledger (n commits).
        let vms = resident_vms(n);
        group.bench_function(BenchmarkId::from_parameter("host_all"), |b| {
            b.iter(|| {
                let mut fresh = ServerLedger::new(spec());
                for vm in &vms {
                    fresh.host(vm);
                }
                black_box(fresh.cost())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_ledger);
criterion_main!(benches);
