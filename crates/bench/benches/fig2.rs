//! Regenerates the paper's Fig. 2 in quick mode and benchmarks its
//! representative sweep point (all VM and server types, ia = 4).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    print_regenerated("Fig. 2", esvm_exper::experiments::fig2);
    let config = representative_config(100);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
