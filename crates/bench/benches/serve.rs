//! Online serving benchmark: per-decision latency of the `esvm serve`
//! engine at 100k streamed events, recorded in `BENCH_serve.json` at
//! the repo root (the PR-3 regression-gate pattern).
//!
//! The headline claim is **sub-10µs mean decision latency**: each
//! arrival runs the full O(log K)-scored MIEC scan (spec-class pruning
//! + incremental cost) plus the departure heap drain, and the mean
//! over 100k events must stay below 10µs on commodity hardware
//! (hard-asserted when `ESVM_REQUIRE_SERVE_LATENCY=1`, as the CI
//! `online` job does). The mean and tail (p50/p95/p99/max) come from
//! the same `serve.decision_us` histogram the CLI prints, so the bench
//! measures exactly what a `--metrics-out` run reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_bench::{assert_no_regression, committed_bench_field};
use esvm_exper::serve::{feed_problem, ServeSession};
use esvm_obs::{names::serve as names, MetricsRegistry, NoopTracer};
use esvm_workload::WorkloadConfig;
use std::hint::black_box;

const EVENTS: usize = 100_000;
const SERVERS: usize = 5_000;
const SEED: u64 = 1;

fn config(vms: usize, servers: usize) -> WorkloadConfig {
    WorkloadConfig::new(vms, servers)
        .mean_interarrival(0.05)
        .mean_duration(5.0)
}

/// Group-commit cadence of the journaled benchmark leg: matches the
/// CLI's `--fsync-every` default so the measured overhead is what a
/// default `esvm serve --journal` run pays. At ~400k events/s this is
/// a ~10ms durability window — a crash loses at most that tail, which
/// recovery truncates cleanly.
const FSYNC_EVERY: u32 = 4096;

/// One full serving session over `vms` arrivals (plus their
/// departures), optionally write-ahead journaled; returns the decision
/// histogram and the wall time.
fn run_session(
    vms: usize,
    servers: usize,
    journal: Option<&std::path::Path>,
) -> (esvm_obs::HistogramSummary, f64, u64, u64) {
    let problem = config(vms, servers).generate(SEED).expect("generate");
    let metrics = MetricsRegistry::new();
    let fleet = problem.servers().to_vec();
    let mut session = ServeSession::new(&fleet, &metrics, &NoopTracer);
    if let Some(path) = journal {
        std::fs::remove_file(path).ok();
        session.set_journal(Some(
            esvm_exper::journal::JournalWriter::create(path, &fleet, FSYNC_EVERY)
                .expect("create journal"),
        ));
    }
    let start = std::time::Instant::now();
    black_box(feed_problem(&problem, &mut session));
    session.finish().expect("final checkpoint");
    let total = start.elapsed().as_secs_f64();
    let hist = metrics
        .histogram(names::DECISION_US)
        .expect("decision histogram");
    (hist, total, metrics.counter(names::PLACED), metrics.counter(names::REJECTED))
}

fn bench_serve(c: &mut Criterion) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let committed_mean = committed_bench_field(path, "decision_mean_us");

    // Criterion samples a smaller session so its repeats stay cheap;
    // the recorded numbers come from the full 100k run below.
    let mut group = c.benchmark_group("serve_decision");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("10k_events"), |b| {
        b.iter(|| black_box(run_session(10_000, 500, None).1))
    });
    group.finish();

    // Wall-time legs run as interleaved (plain, journaled) pairs: the
    // overhead ratio divides two sub-second wall times, so slow drift
    // in machine load would swamp the quantity under test if the legs
    // ran back-to-back in blocks. Each pair shares its moment's load;
    // the minimum paired ratio is the comparison the machine interfered
    // with least.
    let journal_path = std::env::temp_dir().join("esvm_bench_serve.esvj");
    let mut pairs = Vec::new();
    for _ in 0..3 {
        pairs.push((
            run_session(EVENTS, SERVERS, None),
            run_session(EVENTS, SERVERS, Some(&journal_path)),
        ));
    }
    std::fs::remove_file(&journal_path).ok();
    let (hist, total_s, placed, rejected) = pairs
        .iter()
        .map(|(p, _)| p.clone())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("pairs");
    let mean_us = hist.mean();
    let throughput = EVENTS as f64 / total_s;
    println!(
        "serve at {EVENTS} events on {SERVERS} servers: mean {mean_us:.2}µs, \
         p50 {:.2}µs, p95 {:.2}µs, p99 {:.2}µs, max {:.2}µs; \
         {placed} placed / {rejected} rejected in {total_s:.2}s ({throughput:.0} events/s)",
        hist.p50, hist.p95, hist.p99, hist.max
    );

    // Regression gate against the committed mean. Latency is machine
    // dependent, so the margin is generous; the hard product claim is
    // the 10µs ceiling below.
    assert_no_regression("serve mean decision latency", mean_us, committed_mean, 1.0);
    if std::env::var("ESVM_REQUIRE_SERVE_LATENCY").as_deref() == Ok("1") {
        assert!(
            mean_us < 10.0,
            "mean decision latency {mean_us:.2}µs breaches the 10µs ceiling"
        );
    }

    // Journaled leg: same stream with the write-ahead journal on at the
    // default group-commit cadence. The durability tax must stay within
    // 10% of the journal-off wall time (hard-asserted when
    // `ESVM_REQUIRE_JOURNAL_OVERHEAD=1`, as the CI `resilience` job
    // does).
    let (j_hist, j_total_s, j_placed, j_rejected) = pairs
        .iter()
        .map(|(_, j)| j.clone())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("pairs");
    assert_eq!(
        (placed, rejected),
        (j_placed, j_rejected),
        "journaling must not change decisions"
    );
    let overhead = pairs
        .iter()
        .map(|((_, p, _, _), (_, j, _, _))| j / p)
        .min_by(f64::total_cmp)
        .expect("pairs");
    println!(
        "journaled (fsync every {FSYNC_EVERY}): mean {:.2}µs, {j_total_s:.2}s total \
         — {:.1}% overhead vs journal-off",
        j_hist.mean(),
        (overhead - 1.0) * 100.0
    );
    if std::env::var("ESVM_REQUIRE_JOURNAL_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            overhead <= 1.10,
            "journal overhead {:.1}% breaches the 10% budget",
            (overhead - 1.0) * 100.0
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"events\": {EVENTS},\n  \"servers\": {SERVERS},\n  \"workload_seed\": {SEED},\n  \"placed\": {placed},\n  \"rejected\": {rejected},\n  \"decision_mean_us\": {mean_us:.4},\n  \"decision_p50_us\": {:.4},\n  \"decision_p95_us\": {:.4},\n  \"decision_p99_us\": {:.4},\n  \"decision_max_us\": {:.4},\n  \"total_seconds\": {total_s:.6},\n  \"throughput_events_per_second\": {throughput:.0},\n  \"journal_fsync_every\": {FSYNC_EVERY},\n  \"journal_total_seconds\": {j_total_s:.6},\n  \"journal_overhead_ratio\": {overhead:.4}\n}}\n",
        hist.p50, hist.p95, hist.p99, hist.max,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
