//! Regenerates the paper's Fig. 6 in quick mode and benchmarks its
//! representative sweep point (mean VM length 10 min).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    print_regenerated("Fig. 6", esvm_exper::experiments::fig6);
    let config = representative_config(100).mean_duration(10.0);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
