//! Regenerates the paper's Fig. 7 in quick mode and benchmarks its
//! representative sweep point (standard VMs on server types 1-3).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    print_regenerated("Fig. 7", esvm_exper::experiments::fig7);
    let config = representative_config(100).vm_types(esvm_workload::catalog::standard_vm_types()).server_types(esvm_workload::catalog::server_types_1_3());
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
