//! Micro-benchmarks of every allocation algorithm on the paper's
//! flagship instance (100 VMs on 50 servers, all catalogs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_core::{Allocator, AllocatorKind};
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_allocators(c: &mut Criterion) {
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .generate(42)
        .expect("instance");
    let mut group = c.benchmark_group("allocate_100vms_50servers");
    for kind in AllocatorKind::ALL {
        let allocator = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = allocator.allocate(black_box(&problem), &mut rng).unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("miec_scaling");
    group.sample_size(10);
    for vms in [100usize, 200, 400] {
        let problem = WorkloadConfig::new(vms, vms / 2)
            .mean_interarrival(4.0)
            .generate(1)
            .expect("instance");
        group.bench_function(BenchmarkId::from_parameter(vms), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = esvm_core::Miec::new()
                    .allocate(black_box(&problem), &mut rng)
                    .unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocators, bench_scaling);
criterion_main!(benches);
