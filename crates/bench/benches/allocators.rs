//! Micro-benchmarks of every allocation algorithm on the paper's
//! flagship instance (100 VMs on 50 servers, all catalogs), plus a
//! production-scale MIEC point (2000 VMs on 500 servers) that records
//! the optimised-vs-reference speedup in `BENCH_miec.json` at the repo
//! root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_core::{Allocator, AllocatorKind, Miec};
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn bench_allocators(c: &mut Criterion) {
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .generate(42)
        .expect("instance");
    let mut group = c.benchmark_group("allocate_100vms_50servers");
    for kind in AllocatorKind::ALL {
        let allocator = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = allocator.allocate(black_box(&problem), &mut rng).unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("miec_scaling");
    group.sample_size(10);
    for vms in [100usize, 200, 400] {
        let problem = WorkloadConfig::new(vms, vms / 2)
            .mean_interarrival(4.0)
            .generate(1)
            .expect("instance");
        group.bench_function(BenchmarkId::from_parameter(vms), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = Miec::new().allocate(black_box(&problem), &mut rng).unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

/// Median wall-clock seconds over `runs` executions of `f`.
fn time_median<F: FnMut() -> f64>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Replays the reference trajectory up to the first VM the two runs place
/// differently and asserts that, at that common state, both candidate
/// servers offered the same score under *both* arithmetics — i.e. the
/// divergence is a genuine tie whose winner the reference picked by
/// rounding noise, not a scoring bug. (Later placements may then differ
/// legitimately: the trajectories have forked.)
fn certify_first_divergence_is_fp_tie(
    problem: &esvm_simcore::AllocationProblem,
    fast: &esvm_simcore::Assignment,
    slow: &esvm_simcore::Assignment,
) {
    let mut replay = esvm_simcore::Assignment::new(problem);
    for j in problem.vms_by_start_time() {
        let vm = &problem.vms()[j];
        let f = fast.placement()[vm.id().index()].expect("complete run");
        let s = slow.placement()[vm.id().index()].expect("complete run");
        if f != s {
            let delta_gap =
                (replay.ledger(f).incremental_cost(vm) - replay.ledger(s).incremental_cost(vm)).abs();
            let reference_gap = (replay.ledger(f).reference_incremental_cost(vm)
                - replay.ledger(s).reference_incremental_cost(vm))
            .abs();
            assert!(
                delta_gap < 1e-9 && reference_gap < 1e-9,
                "first divergence at {} is not an FP tie: delta gap {delta_gap:e}, \
                 reference gap {reference_gap:e}",
                vm.id()
            );
            println!(
                "placement divergence at {} certified as an FP tie \
                 (delta gap {delta_gap:.1e}, reference gap {reference_gap:.1e})",
                vm.id()
            );
            return;
        }
        replay.place(vm.id(), s).expect("replaying a valid assignment");
    }
}

/// Production-scale point: 2000 VMs on 500 servers. Times the optimised
/// MIEC (delta scoring + spec-class pruning) against the reference
/// implementation (full scan, clone-and-rescan scoring), checks
/// placement equivalence, and writes the measurements to
/// `BENCH_miec.json` at the repository root.
///
/// Equivalence is asserted in two layers, because they have different
/// strength guarantees:
///
/// * pruning is *exactly* placement-preserving (asleep servers of one
///   spec class score bit-identically), so pruned vs unpruned must match
///   byte for byte;
/// * delta scoring vs the clone-and-rescan reference agree except where
///   two servers offer the *same* marginal cost: the delta path computes
///   the tie exactly and takes the lowest id, while the reference's
///   difference-of-sums carries ~1e-13 rounding noise that can break the
///   tie either way. Any divergence is therefore certified to be such an
///   FP tie (both arithmetics agree the scores are equal within 1e-9).
fn bench_miec_at_scale(c: &mut Criterion) {
    const VMS: usize = 2000;
    const SERVERS: usize = 500;
    let problem = WorkloadConfig::new(VMS, SERVERS)
        .mean_interarrival(4.0)
        .generate(1)
        .expect("instance");

    let mut group = c.benchmark_group("miec_2000vms_500servers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("optimised"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let a = Miec::new().allocate(black_box(&problem), &mut rng).unwrap();
            black_box(a.total_cost())
        })
    });
    group.finish();

    let mut rng = StdRng::seed_from_u64(7);
    let fast = Miec::new().allocate(&problem, &mut rng).unwrap();
    let unpruned = Miec::new()
        .without_pruning()
        .allocate(&problem, &mut rng)
        .unwrap();
    assert_eq!(
        fast.placement(),
        unpruned.placement(),
        "spec-class pruning changed placements at scale"
    );
    let slow = Miec::reference().allocate(&problem, &mut rng).unwrap();
    let placements_identical = fast.placement() == slow.placement();
    if !placements_identical {
        certify_first_divergence_is_fp_tie(&problem, &fast, &slow);
        let rel = (fast.total_cost() - slow.total_cost()).abs() / slow.total_cost();
        assert!(
            rel < 1e-6,
            "optimised and reference total costs diverged: rel diff {rel:e}"
        );
    }

    let optimised_s = time_median(5, || {
        let mut rng = StdRng::seed_from_u64(7);
        Miec::new().allocate(&problem, &mut rng).unwrap().total_cost()
    });
    let reference_s = time_median(3, || {
        let mut rng = StdRng::seed_from_u64(7);
        Miec::reference()
            .allocate(&problem, &mut rng)
            .unwrap()
            .total_cost()
    });
    let speedup = reference_s / optimised_s;
    println!(
        "miec @ {VMS} VMs / {SERVERS} servers: optimised {:.3} s, reference {:.3} s, {speedup:.1}x",
        optimised_s, reference_s
    );

    let json = format!(
        "{{\n  \"benchmark\": \"miec_allocation\",\n  \"vms\": {VMS},\n  \"servers\": {SERVERS},\n  \"workload_seed\": 1,\n  \"mean_interarrival\": 4.0,\n  \"optimised_seconds\": {optimised_s:.6},\n  \"reference_seconds\": {reference_s:.6},\n  \"speedup\": {speedup:.2},\n  \"pruning_placement_exact\": true,\n  \"placements_identical\": {placements_identical},\n  \"divergences_certified_fp_ties\": true\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_miec.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_allocators, bench_scaling, bench_miec_at_scale);
criterion_main!(benches);
