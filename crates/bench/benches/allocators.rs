//! Micro-benchmarks of every allocation algorithm on the paper's
//! flagship instance (100 VMs on 50 servers, all catalogs), plus a
//! production-scale MIEC point (2000 VMs on 500 servers) that records
//! the optimised-vs-reference speedup in `BENCH_miec.json` at the repo
//! root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esvm_bench::{assert_no_regression, committed_bench_field, time_best, time_pair_best};
use esvm_core::{Allocator, AllocatorKind, Miec};
use esvm_obs::{DiscardSink, MetricsRegistry};
use esvm_par::Parallelism;
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_allocators(c: &mut Criterion) {
    let problem = WorkloadConfig::new(100, 50)
        .mean_interarrival(4.0)
        .generate(42)
        .expect("instance");
    let mut group = c.benchmark_group("allocate_100vms_50servers");
    for kind in AllocatorKind::ALL {
        let allocator = kind.build();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = allocator.allocate(black_box(&problem), &mut rng).unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("miec_scaling");
    group.sample_size(10);
    for vms in [100usize, 200, 400] {
        let problem = WorkloadConfig::new(vms, vms / 2)
            .mean_interarrival(4.0)
            .generate(1)
            .expect("instance");
        group.bench_function(BenchmarkId::from_parameter(vms), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let a = Miec::new().allocate(black_box(&problem), &mut rng).unwrap();
                black_box(a.total_cost())
            })
        });
    }
    group.finish();
}

/// Replays the reference trajectory up to the first VM the two runs place
/// differently and asserts that, at that common state, both candidate
/// servers offered the same score under *both* arithmetics — i.e. the
/// divergence is a genuine tie whose winner the reference picked by
/// rounding noise, not a scoring bug. (Later placements may then differ
/// legitimately: the trajectories have forked.)
fn certify_first_divergence_is_fp_tie(
    problem: &esvm_simcore::AllocationProblem,
    fast: &esvm_simcore::Assignment,
    slow: &esvm_simcore::Assignment,
) {
    let mut replay = esvm_simcore::Assignment::new(problem);
    for j in problem.vms_by_start_time() {
        let vm = &problem.vms()[j];
        let f = fast.placement()[vm.id().index()].expect("complete run");
        let s = slow.placement()[vm.id().index()].expect("complete run");
        if f != s {
            let delta_gap =
                (replay.ledger(f).incremental_cost(vm) - replay.ledger(s).incremental_cost(vm)).abs();
            let reference_gap = (replay.ledger(f).reference_incremental_cost(vm)
                - replay.ledger(s).reference_incremental_cost(vm))
            .abs();
            assert!(
                delta_gap < 1e-9 && reference_gap < 1e-9,
                "first divergence at {} is not an FP tie: delta gap {delta_gap:e}, \
                 reference gap {reference_gap:e}",
                vm.id()
            );
            println!(
                "placement divergence at {} certified as an FP tie \
                 (delta gap {delta_gap:.1e}, reference gap {reference_gap:.1e})",
                vm.id()
            );
            return;
        }
        replay.place(vm.id(), s).expect("replaying a valid assignment");
    }
}

/// Measures one sharded scale point: generates the seed-1 instance,
/// certifies the sharded parallel placement and cost are bit-identical
/// to the sequential oracle (panicking otherwise, so a recorded timing
/// can never come from a divergent run), then returns the
/// lower-envelope `(sequential, parallel)` seconds over `runs` rounds.
fn measure_scale_point(
    prefix: &str,
    vms: usize,
    servers: usize,
    runs: usize,
    par: Parallelism,
) -> (f64, f64) {
    let problem = WorkloadConfig::new(vms, servers)
        .mean_interarrival(4.0)
        .generate(1)
        .expect("instance");
    let sequential = Miec::new();
    let parallel = Miec::new().with_parallelism(par);
    let mut rng = StdRng::seed_from_u64(7);
    let seq = sequential.allocate(&problem, &mut rng).unwrap();
    let shard = parallel.allocate(&problem, &mut rng).unwrap();
    assert_eq!(
        seq.placement(),
        shard.placement(),
        "sharded MIEC diverged from the sequential oracle at {vms} VMs / {servers} servers"
    );
    assert_eq!(
        seq.total_cost().to_bits(),
        shard.total_cost().to_bits(),
        "sharded MIEC cost diverged at {vms} VMs / {servers} servers"
    );
    drop((seq, shard));
    let seq_s = time_best(runs, || {
        let mut rng = StdRng::seed_from_u64(7);
        sequential.allocate(&problem, &mut rng).unwrap().total_cost()
    });
    let par_s = time_best(runs, || {
        let mut rng = StdRng::seed_from_u64(7);
        parallel.allocate(&problem, &mut rng).unwrap().total_cost()
    });
    println!(
        "{prefix}: {vms} VMs / {servers} servers, sequential {seq_s:.3} s, \
         sharded parallel {par_s:.3} s ({:.2}x), placement exact",
        seq_s / par_s
    );
    (seq_s, par_s)
}

/// Formats one scale point's `BENCH_miec.json` fields. `None` (a large
/// point that was skipped this run and has no committed baseline yet)
/// records `null` timings so the flat-scan reader treats them as
/// missing.
fn scale_fields(prefix: &str, vms: usize, servers: usize, measured: Option<(f64, f64)>) -> String {
    let (seq, par, speedup, exact) = match measured {
        Some((s, p)) => (
            format!("{s:.6}"),
            format!("{p:.6}"),
            format!("{:.2}", s / p),
            "true",
        ),
        None => ("null".into(), "null".into(), "null".into(), "null"),
    };
    format!(
        ",\n  \"{prefix}_vms\": {vms},\n  \"{prefix}_servers\": {servers},\n  \
         \"{prefix}_sequential_seconds\": {seq},\n  \"{prefix}_parallel_seconds\": {par},\n  \
         \"{prefix}_parallel_speedup\": {speedup},\n  \"{prefix}_parallel_placement_exact\": {exact}"
    )
}

/// Production-scale point: 2000 VMs on 500 servers. Times the optimised
/// MIEC (delta scoring + spec-class pruning) against the reference
/// implementation (full scan, clone-and-rescan scoring), checks
/// placement equivalence, and writes the measurements to
/// `BENCH_miec.json` at the repository root.
///
/// Equivalence is asserted in two layers, because they have different
/// strength guarantees:
///
/// * pruning is *exactly* placement-preserving (asleep servers of one
///   spec class score bit-identically), so pruned vs unpruned must match
///   byte for byte;
/// * delta scoring vs the clone-and-rescan reference agree except where
///   two servers offer the *same* marginal cost: the delta path computes
///   the tie exactly and takes the lowest id, while the reference's
///   difference-of-sums carries ~1e-13 rounding noise that can break the
///   tie either way. Any divergence is therefore certified to be such an
///   FP tie (both arithmetics agree the scores are equal within 1e-9).
fn bench_miec_at_scale(c: &mut Criterion) {
    const VMS: usize = 2000;
    const SERVERS: usize = 500;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_miec.json");
    // Read the committed baseline before this run overwrites the record.
    // The gate compares the reference-normalized ratio, so machine-speed
    // drift between the recording and the checking run cancels out.
    let committed_ratio = committed_bench_field(path, "optimised_seconds")
        .zip(committed_bench_field(path, "reference_seconds"))
        .map(|(o, r)| o / r);
    let problem = WorkloadConfig::new(VMS, SERVERS)
        .mean_interarrival(4.0)
        .generate(1)
        .expect("instance");

    let mut group = c.benchmark_group("miec_2000vms_500servers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("optimised"), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let a = Miec::new().allocate(black_box(&problem), &mut rng).unwrap();
            black_box(a.total_cost())
        })
    });
    // Metrics-on scale point: same scan with counters and histograms
    // recording (events discarded) — the cost of turning telemetry on.
    group.bench_function(BenchmarkId::from_parameter("instrumented"), |b| {
        b.iter(|| {
            let metrics = MetricsRegistry::new();
            let a = Miec::new()
                .allocate_observed(black_box(&problem), &mut DiscardSink, &metrics)
                .unwrap();
            black_box(a.total_cost())
        })
    });
    group.finish();

    let mut rng = StdRng::seed_from_u64(7);
    let fast = Miec::new().allocate(&problem, &mut rng).unwrap();
    let unpruned = Miec::new()
        .without_pruning()
        .allocate(&problem, &mut rng)
        .unwrap();
    assert_eq!(
        fast.placement(),
        unpruned.placement(),
        "spec-class pruning changed placements at scale"
    );
    // Parallel scoring must be a pure execution detail: bit-identical
    // placements and cost at scale, with and without pruning. Batch is
    // pinned at 256: the shard-major batched scan keeps each shard's
    // ledger state cache-resident across the window, which is where the
    // sharded engine's win comes from at the large scale points (4.0x
    // at 1M VMs / 100k servers even on a single core).
    let par = Parallelism::new(4).with_batch(256);
    let par_fast = Miec::new()
        .with_parallelism(par)
        .allocate(&problem, &mut rng)
        .unwrap();
    assert_eq!(
        fast.placement(),
        par_fast.placement(),
        "parallel MIEC diverged from the sequential oracle at scale"
    );
    assert_eq!(
        fast.total_cost().to_bits(),
        par_fast.total_cost().to_bits(),
        "parallel MIEC cost diverged at scale"
    );
    let par_unpruned = Miec::new()
        .without_pruning()
        .with_parallelism(par)
        .allocate(&problem, &mut rng)
        .unwrap();
    assert_eq!(
        unpruned.placement(),
        par_unpruned.placement(),
        "parallel unpruned MIEC diverged at scale"
    );
    let slow = Miec::reference().allocate(&problem, &mut rng).unwrap();
    let placements_identical = fast.placement() == slow.placement();
    if !placements_identical {
        certify_first_divergence_is_fp_tie(&problem, &fast, &slow);
        let rel = (fast.total_cost() - slow.total_cost()).abs() / slow.total_cost();
        assert!(
            rel < 1e-6,
            "optimised and reference total costs diverged: rel diff {rel:e}"
        );
    }

    // One instrumented run: the scan counters that characterise this
    // instance, plus a decision-equivalence check against the plain run.
    let metrics = MetricsRegistry::new();
    let observed = Miec::new()
        .allocate_observed(&problem, &mut DiscardSink, &metrics)
        .unwrap();
    assert_eq!(
        observed.placement(),
        fast.placement(),
        "instrumentation changed MIEC placements at scale"
    );
    let candidates_considered = metrics.counter("miec.candidates_considered");
    let spec_class_pruned = metrics.counter("miec.spec_class_pruned");
    let fp_ties = metrics.counter("miec.fp_ties");

    // Optimised and reference timed interleaved: their ratio is what
    // the regression gate compares across runs.
    let pair = time_pair_best(
        15,
        || {
            let mut rng = StdRng::seed_from_u64(7);
            Miec::new().allocate(&problem, &mut rng).unwrap().total_cost()
        },
        || {
            let mut rng = StdRng::seed_from_u64(7);
            Miec::reference()
                .allocate(&problem, &mut rng)
                .unwrap()
                .total_cost()
        },
    );
    let (optimised_s, reference_s) = (pair.best_f, pair.best_g);
    let instrumented_s = time_best(7, || {
        let metrics = MetricsRegistry::new();
        Miec::new()
            .allocate_observed(&problem, &mut DiscardSink, &metrics)
            .unwrap()
            .total_cost()
    });
    // Provenance tracing at the same point: the statically disabled
    // NoopTracer path (the shipping default — must cost nothing beyond
    // the metrics layer it rides on) and the enabled CollectingTracer
    // path (a span per decision plus one explain record per placement).
    // Each ratio comes from an interleaved pair against the
    // instrumented baseline so scheduler drift cancels, and the
    // enabled run reuses one warm tracer (reset between runs) so the
    // gate measures steady-state recording, not first-run page-ins.
    // Wall-clock ratios on shared machines still see multi-10ms
    // interference bursts that outlast one whole pair block, so the
    // measurement retries up to three times and keeps the best pair —
    // a genuine regression is persistent and fails all three.
    // ESVM_REQUIRE_TRACE_OVERHEAD=1 gates both at ≤10%.
    let mut warm_tracer = esvm_obs::CollectingTracer::new();
    let mut noop_best = (1.0, f64::INFINITY);
    let mut trace_best = (1.0, f64::INFINITY);
    for _ in 0..3 {
        let noop_pair = time_pair_best(
            7,
            || {
                let metrics = MetricsRegistry::new();
                Miec::new()
                    .allocate_observed(&problem, &mut DiscardSink, &metrics)
                    .unwrap()
                    .total_cost()
            },
            || {
                let metrics = MetricsRegistry::new();
                Miec::new()
                    .allocate_traced(&problem, &mut DiscardSink, &metrics, &esvm_obs::NoopTracer)
                    .unwrap()
                    .total_cost()
            },
        );
        if noop_pair.best_g / noop_pair.best_f < noop_best.1 / noop_best.0 {
            noop_best = (noop_pair.best_f, noop_pair.best_g);
        }
        let trace_pair = time_pair_best(
            7,
            || {
                let metrics = MetricsRegistry::new();
                Miec::new()
                    .allocate_observed(&problem, &mut DiscardSink, &metrics)
                    .unwrap()
                    .total_cost()
            },
            || {
                let metrics = MetricsRegistry::new();
                warm_tracer.reset();
                Miec::new()
                    .allocate_traced(&problem, &mut DiscardSink, &metrics, &warm_tracer)
                    .unwrap()
                    .total_cost()
            },
        );
        if trace_pair.best_g / trace_pair.best_f < trace_best.1 / trace_best.0 {
            trace_best = (trace_pair.best_f, trace_pair.best_g);
        }
        if noop_best.1 / noop_best.0 - 1.0 <= 0.10 && trace_best.1 / trace_best.0 - 1.0 <= 0.10
        {
            break;
        }
    }
    let (trace_noop_s, trace_enabled_s) = (noop_best.1, trace_best.1);
    let trace_noop_overhead = trace_noop_s / noop_best.0 - 1.0;
    let trace_overhead = trace_enabled_s / trace_best.0 - 1.0;
    println!(
        "miec tracing @ {VMS} VMs: noop tracer {trace_noop_s:.4} s ({:+.1}%), \
         collecting tracer {trace_enabled_s:.4} s ({:+.1}%) vs instrumented",
        trace_noop_overhead * 100.0,
        trace_overhead * 100.0
    );
    if std::env::var("ESVM_REQUIRE_TRACE_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            trace_noop_overhead <= 0.10,
            "NoopTracer path exceeded 10% overhead: {:+.1}%",
            trace_noop_overhead * 100.0
        );
        assert!(
            trace_overhead <= 0.10,
            "enabled tracing exceeded 10% overhead: {:+.1}%",
            trace_overhead * 100.0
        );
    }
    // Parallel timings: the 4-thread sharded engine (persistent shard
    // ownership, batched arrivals — see DESIGN §8), pruned and
    // unpruned. The pre-PR replicate-and-replay timings previously
    // recorded under `parallel_*` are dropped with that design; these
    // fields now measure the shipping sharded path. Timings are
    // recorded honestly along with the host's core count — on a
    // single-core host a speedup is physically impossible, so the ≥2x
    // expectation is only asserted when ESVM_REQUIRE_PARALLEL_SPEEDUP=1
    // (set it on multi-core CI runners), and there at the 20k-VM medium
    // scale point below, where per-VM scan work dominates dispatch.
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let parallel_s = time_best(7, || {
        let mut rng = StdRng::seed_from_u64(7);
        Miec::new()
            .with_parallelism(par)
            .allocate(&problem, &mut rng)
            .unwrap()
            .total_cost()
    });
    let unpruned_s = time_best(3, || {
        let mut rng = StdRng::seed_from_u64(7);
        Miec::new()
            .without_pruning()
            .allocate(&problem, &mut rng)
            .unwrap()
            .total_cost()
    });
    let unpruned_parallel_s = time_best(3, || {
        let mut rng = StdRng::seed_from_u64(7);
        Miec::new()
            .without_pruning()
            .with_parallelism(par)
            .allocate(&problem, &mut rng)
            .unwrap()
            .total_cost()
    });
    let parallel_speedup = optimised_s / parallel_s;
    let unpruned_parallel_speedup = unpruned_s / unpruned_parallel_s;
    println!(
        "miec parallel (4 threads, {host_parallelism} host cores): pruned {parallel_s:.3} s \
         ({parallel_speedup:.2}x), unpruned {unpruned_s:.3} s -> {unpruned_parallel_s:.3} s \
         ({unpruned_parallel_speedup:.2}x)"
    );

    // --- Sharded scale points (ISSUE: 20k CI point + 100k / 1M) ---
    //
    // The medium point is cheap enough to measure on every bench run
    // and is where ESVM_REQUIRE_PARALLEL_SPEEDUP=1 asserts the ≥2x
    // sharded win (multi-core CI only — see above). The two large
    // points take minutes and are opt-in via ESVM_SCALE_BENCH=1; when
    // skipped, their committed measurements are carried forward so a
    // filtered tier-1 bench run never erases them from the record.
    let require_speedup = std::env::var("ESVM_REQUIRE_PARALLEL_SPEEDUP").as_deref() == Ok("1");
    let scale_bench = std::env::var("ESVM_SCALE_BENCH").as_deref() == Ok("1");
    let medium = measure_scale_point("scale_20k", 20_000, 2_000, 3, par);
    if require_speedup {
        let speedup = medium.0 / medium.1;
        assert!(
            speedup >= 2.0,
            "expected >=2x sharded speedup at 20k VMs / 2k servers with 4 \
             threads on a {host_parallelism}-core host, got {speedup:.2}x"
        );
    }
    let mut large = Vec::new();
    for (prefix, vms, servers, runs) in
        [("scale_100k", 100_000, 10_000, 2), ("scale_1m", 1_000_000, 100_000, 1)]
    {
        let measured = if scale_bench {
            let m = measure_scale_point(prefix, vms, servers, runs, par);
            if require_speedup {
                let speedup = m.0 / m.1;
                assert!(
                    speedup >= 2.0,
                    "expected >=2x sharded speedup at {vms} VMs / {servers} \
                     servers on a {host_parallelism}-core host, got {speedup:.2}x"
                );
            }
            Some(m)
        } else {
            committed_bench_field(path, &format!("{prefix}_sequential_seconds"))
                .zip(committed_bench_field(path, &format!("{prefix}_parallel_seconds")))
        };
        large.push((prefix, vms, servers, measured));
    }
    let mut scale_json = scale_fields("scale_20k", 20_000, 2_000, Some(medium));
    for (prefix, vms, servers, measured) in large {
        scale_json.push_str(&scale_fields(prefix, vms, servers, measured));
    }

    let speedup = reference_s / optimised_s;
    let instrumentation_overhead = instrumented_s / optimised_s - 1.0;
    println!(
        "miec @ {VMS} VMs / {SERVERS} servers: optimised {optimised_s:.3} s, \
         instrumented {instrumented_s:.3} s ({:+.1}%), reference {reference_s:.3} s, \
         {speedup:.1}x",
        instrumentation_overhead * 100.0
    );
    // Gate at the 5% acceptance margin widened by the ratio noise this
    // very run observed (per-round spread of optimised/reference): the
    // disabled-sink path must stay within noise of the committed number.
    println!(
        "miec ratio noise this run: {:.1}%",
        pair.ratio_noise * 100.0
    );
    assert_no_regression(
        "miec optimised/reference ratio (no-op sink)",
        optimised_s / reference_s,
        committed_ratio,
        0.05 + pair.ratio_noise,
    );

    let json = format!(
        "{{\n  \"benchmark\": \"miec_allocation\",\n  \"vms\": {VMS},\n  \"servers\": {SERVERS},\n  \"workload_seed\": 1,\n  \"mean_interarrival\": 4.0,\n  \"optimised_seconds\": {optimised_s:.6},\n  \"instrumented_seconds\": {instrumented_s:.6},\n  \"instrumentation_overhead\": {instrumentation_overhead:.4},\n  \"trace_noop_seconds\": {trace_noop_s:.6},\n  \"trace_noop_overhead\": {trace_noop_overhead:.4},\n  \"trace_seconds\": {trace_enabled_s:.6},\n  \"trace_overhead\": {trace_overhead:.4},\n  \"reference_seconds\": {reference_s:.6},\n  \"speedup\": {speedup:.2},\n  \"host_parallelism\": {host_parallelism},\n  \"parallel_engine\": \"sharded\",\n  \"parallel_threads\": 4,\n  \"parallel_shards\": {shards},\n  \"parallel_batch\": {batch},\n  \"parallel_seconds\": {parallel_s:.6},\n  \"parallel_speedup\": {parallel_speedup:.2},\n  \"unpruned_seconds\": {unpruned_s:.6},\n  \"unpruned_parallel_seconds\": {unpruned_parallel_s:.6},\n  \"unpruned_parallel_speedup\": {unpruned_parallel_speedup:.2},\n  \"parallel_placement_exact\": true,\n  \"candidates_considered\": {candidates_considered},\n  \"spec_class_pruned\": {spec_class_pruned},\n  \"fp_ties\": {fp_ties},\n  \"pruning_placement_exact\": true,\n  \"placements_identical\": {placements_identical},\n  \"divergences_certified_fp_ties\": true{scale_json}\n}}\n",
        shards = par.shards_override(),
        batch = par.batch(),
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_allocators, bench_scaling, bench_miec_at_scale);
criterion_main!(benches);
