//! Regenerates the paper's Fig. 9 in quick mode and benchmarks its
//! representative sweep point (load lines for standard VMs).

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_bench::{comparison_at, print_regenerated, representative_config};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    print_regenerated("Fig. 9", esvm_exper::experiments::fig9);
    let config = representative_config(100).vm_types(esvm_workload::catalog::standard_vm_types());
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("sweep_point", |b| {
        b.iter(|| black_box(comparison_at(&config, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
