//! Regenerates Tables I and II and benchmarks workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use esvm_exper::experiments::{table1, table2};
use esvm_workload::WorkloadConfig;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    println!("\nTable I — the types of resource demands of VMs\n\n{}", table1());
    println!(
        "\nTable II — the types of resource capacities and power consumption parameters of servers\n\n{}",
        table2()
    );

    let config = WorkloadConfig::new(500, 250).mean_interarrival(2.0);
    c.bench_function("generate_500vm_workload", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(config.generate(seed).unwrap().vm_count())
        })
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
