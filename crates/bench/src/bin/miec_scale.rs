//! Standalone MIEC scale driver: sequential vs sharded-parallel
//! allocation at arbitrary instance sizes.
//!
//! The criterion benches pin their scale points so `BENCH_miec.json`
//! stays comparable across runs; this binary is the free-form
//! counterpart for exploring other sizes (including the 100k- and
//! 1M-VM points) without editing a bench:
//!
//! ```text
//! cargo run --release -p esvm-bench --bin miec_scale -- \
//!     --vms 100000 --servers 10000 --threads 4 [--shards K] \
//!     [--batch B] [--seed S] [--runs R]
//! ```
//!
//! Every run verifies the parallel placement and total cost are
//! bit-identical to the sequential oracle before reporting the
//! speedup, so a timing can never silently come from a divergent
//! allocation.

use esvm_core::{Allocator, Miec};
use esvm_par::Parallelism;
use esvm_workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    vms: usize,
    servers: usize,
    threads: usize,
    shards: usize,
    batch: usize,
    seed: u64,
    runs: usize,
}

fn parse_args() -> Result<Args, String> {
    let env_par = Parallelism::from_env();
    let mut args = Args {
        vms: 20_000,
        servers: 2_000,
        threads: env_par.threads(),
        shards: env_par.shards_override(),
        batch: env_par.batch(),
        seed: 1,
        runs: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--vms" => args.vms = value("--vms")?,
            "--servers" => args.servers = value("--servers")?,
            "--threads" => args.threads = value("--threads")?,
            "--shards" => args.shards = value("--shards")?,
            "--batch" => args.batch = value("--batch")?,
            "--seed" => args.seed = value("--seed")? as u64,
            "--runs" => args.runs = value("--runs")?.max(1),
            "--help" | "-h" => {
                println!(
                    "usage: miec_scale [--vms N] [--servers N] [--threads N] \
                     [--shards K] [--batch B] [--seed S] [--runs R]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("miec_scale: {e}");
            std::process::exit(2);
        }
    };
    let par = Parallelism::new(args.threads)
        .with_shards(args.shards)
        .with_batch(args.batch);
    println!(
        "miec_scale: {} VMs / {} servers, seed {}, {} threads, shards {}, batch {}",
        args.vms,
        args.servers,
        args.seed,
        par.threads(),
        par.shards_override(),
        par.batch()
    );

    let start = std::time::Instant::now();
    let problem = WorkloadConfig::new(args.vms, args.servers)
        .mean_interarrival(4.0)
        .generate(args.seed)
        .expect("workload generation");
    println!("generated in {:.3} s", start.elapsed().as_secs_f64());

    let sequential = Miec::new();
    let parallel = Miec::new().with_parallelism(par);
    let mut rng = StdRng::seed_from_u64(7);
    let seq = sequential.allocate(&problem, &mut rng).unwrap();
    let par_run = parallel.allocate(&problem, &mut rng).unwrap();
    assert_eq!(
        seq.placement(),
        par_run.placement(),
        "parallel MIEC diverged from the sequential oracle"
    );
    assert_eq!(
        seq.total_cost().to_bits(),
        par_run.total_cost().to_bits(),
        "parallel MIEC cost diverged"
    );
    drop((seq, par_run));

    let seq_s = esvm_bench::time_best(args.runs, || {
        let mut rng = StdRng::seed_from_u64(7);
        sequential.allocate(&problem, &mut rng).unwrap().total_cost()
    });
    let par_s = esvm_bench::time_best(args.runs, || {
        let mut rng = StdRng::seed_from_u64(7);
        parallel.allocate(&problem, &mut rng).unwrap().total_cost()
    });
    println!(
        "sequential {seq_s:.3} s, parallel {par_s:.3} s, speedup {:.2}x, \
         placement exact",
        seq_s / par_s
    );
}
