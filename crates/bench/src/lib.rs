//! # esvm-bench
//!
//! Criterion benchmarks for the esvm workspace. One bench target per
//! paper artefact (`fig2` … `fig9`, `tables`) plus micro-benches for the
//! allocators (`allocators`) and the exact solver (`ilp`).
//!
//! Every `figN` bench **regenerates the figure** in quick mode and
//! prints it before timing a representative sweep point, so
//! `cargo bench` reproduces the paper's series as a side effect; the
//! full-scale regeneration lives in the `esvm` CLI (`esvm fig2 …`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use esvm_core::AllocatorKind;
use esvm_exper::runner::RunError;
use esvm_exper::{ExpOptions, Figure, MonteCarlo};
use esvm_workload::WorkloadConfig;

/// Options used for the printed quick-mode regeneration.
pub fn regen_options() -> ExpOptions {
    ExpOptions {
        seeds: 6,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        quick: true,
    }
}

/// Regenerates one figure in quick mode and prints it (used by every
/// `figN` bench before timing).
pub fn print_regenerated(
    name: &str,
    f: fn(&ExpOptions) -> Result<Figure, RunError>,
) {
    match f(&regen_options()) {
        Ok(figure) => println!("\n--- regenerated (quick mode) ---\n{figure}"),
        Err(e) => println!("\n--- {name} regeneration failed: {e} ---"),
    }
}

/// The paper's flagship comparison at one sweep point: MIEC vs FFPS over
/// a few seeds. This is what the `figN` benches time.
pub fn comparison_at(config: &WorkloadConfig, seeds: u64) -> f64 {
    let point = MonteCarlo::new(seeds, 1)
        .compare(config, &[AllocatorKind::Miec, AllocatorKind::Ffps])
        .expect("comparison");
    point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec)
}

/// A mid-sweep configuration for a figure's representative point.
pub fn representative_config(vms: usize) -> WorkloadConfig {
    WorkloadConfig::new(vms, (vms / 2).max(1))
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_at_returns_a_ratio() {
        let r = comparison_at(&representative_config(20), 2);
        assert!(r.is_finite());
    }

    #[test]
    fn regen_options_are_quick() {
        assert!(regen_options().quick);
    }
}
