//! # esvm-bench
//!
//! Criterion benchmarks for the esvm workspace. One bench target per
//! paper artefact (`fig2` … `fig9`, `tables`) plus micro-benches for the
//! allocators (`allocators`) and the exact solver (`ilp`).
//!
//! Every `figN` bench **regenerates the figure** in quick mode and
//! prints it before timing a representative sweep point, so
//! `cargo bench` reproduces the paper's series as a side effect; the
//! full-scale regeneration lives in the `esvm` CLI (`esvm fig2 …`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use esvm_core::AllocatorKind;
use esvm_exper::runner::RunError;
use esvm_exper::{ExpOptions, Figure, MonteCarlo};
use esvm_workload::WorkloadConfig;

/// Options used for the printed quick-mode regeneration.
pub fn regen_options() -> ExpOptions {
    ExpOptions {
        seeds: 6,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        quick: true,
    }
}

/// Regenerates one figure in quick mode and prints it (used by every
/// `figN` bench before timing).
pub fn print_regenerated(
    name: &str,
    f: fn(&ExpOptions) -> Result<Figure, RunError>,
) {
    match f(&regen_options()) {
        Ok(figure) => println!("\n--- regenerated (quick mode) ---\n{figure}"),
        Err(e) => println!("\n--- {name} regeneration failed: {e} ---"),
    }
}

/// The paper's flagship comparison at one sweep point: MIEC vs FFPS over
/// a few seeds. This is what the `figN` benches time.
pub fn comparison_at(config: &WorkloadConfig, seeds: u64) -> f64 {
    let point = MonteCarlo::new(seeds, 1)
        .compare(config, &[AllocatorKind::Miec, AllocatorKind::Ffps])
        .expect("comparison");
    point.reduction_ratio(AllocatorKind::Ffps, AllocatorKind::Miec)
}

/// A mid-sweep configuration for a figure's representative point.
pub fn representative_config(vms: usize) -> WorkloadConfig {
    WorkloadConfig::new(vms, (vms / 2).max(1))
        .mean_interarrival(4.0)
        .mean_duration(5.0)
        .transition_time(1.0)
}

/// Lower-envelope (minimum) wall-clock seconds over `runs` executions
/// of `f` — far less sensitive to scheduler and frequency noise than a
/// mean or median.
pub fn time_best<F: FnMut() -> f64>(runs: usize, mut f: F) -> f64 {
    (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Result of [`time_pair_best`]: lower envelopes of two interleaved
/// measurements plus a live estimate of how noisy their ratio is on
/// this machine right now.
#[derive(Debug, Clone, Copy)]
pub struct PairTiming {
    /// Minimum observed seconds of the first closure.
    pub best_f: f64,
    /// Minimum observed seconds of the second closure.
    pub best_g: f64,
    /// Relative spread `median / min − 1` of the per-round ratios
    /// `f_i / g_i` — the measurement noise the regression gate must
    /// tolerate on top of its margin. The median (not the max) keeps a
    /// single perturbed round from inflating the estimate.
    pub ratio_noise: f64,
}

/// Lower-envelope seconds for two closures executed *alternately* for
/// `rounds` rounds. Interleaving makes both measurements see the same
/// machine conditions, so their ratio is stable across machine-speed
/// drift — which is what the regression gates compare (see
/// [`assert_no_regression`]); the per-round ratio spread is returned as
/// [`PairTiming::ratio_noise`] so gates can widen their margin by the
/// noise actually observed.
pub fn time_pair_best<F, G>(rounds: usize, mut f: F, mut g: G) -> PairTiming
where
    F: FnMut() -> f64,
    G: FnMut() -> f64,
{
    let mut best_f = f64::INFINITY;
    let mut best_g = f64::INFINITY;
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        let sf = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        std::hint::black_box(g());
        let sg = start.elapsed().as_secs_f64();
        best_f = best_f.min(sf);
        best_g = best_g.min(sg);
        ratios.push(sf / sg);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio_noise = if ratios.is_empty() {
        0.0
    } else {
        ratios[ratios.len() / 2] / ratios[0] - 1.0
    };
    PairTiming { best_f, best_g, ratio_noise }
}

/// Reads one numeric field from a committed `BENCH_*.json` record.
///
/// The records are flat JSON objects written by the benches themselves,
/// so a plain textual scan suffices (the workspace deliberately carries
/// no JSON parser). Returns `None` when the file or the field is
/// missing or unparsable.
pub fn committed_bench_field(path: &str, field: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{field}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    value.parse().ok()
}

/// Asserts that a freshly measured cost (seconds, or a
/// reference-normalized ratio — lower is better) has not regressed more
/// than `margin` (a fraction, e.g. `0.05`) against the committed
/// baseline. A missing baseline only prints a notice — first runs and
/// fresh clones must not fail.
///
/// The benches gate *reference-normalized ratios*
/// (`optimised / reference`, both timed interleaved in the same run)
/// rather than raw wall-clock: machine-speed drift between the
/// baseline-recording run and the checking run then cancels out, while
/// a genuine slowdown of the optimised path still trips the gate.
///
/// # Panics
///
/// Panics when `fresh` exceeds `committed × (1 + margin)`.
pub fn assert_no_regression(label: &str, fresh: f64, committed: Option<f64>, margin: f64) {
    let Some(baseline) = committed else {
        println!("{label}: no committed baseline, skipping regression check");
        return;
    };
    let limit = baseline * (1.0 + margin);
    assert!(
        fresh < limit,
        "{label} regressed: {fresh:.6} vs committed {baseline:.6} (limit {limit:.6})"
    );
    println!(
        "{label}: {fresh:.6} vs committed {baseline:.6} — within {:.0}% margin",
        margin * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_at_returns_a_ratio() {
        let r = comparison_at(&representative_config(20), 2);
        assert!(r.is_finite());
    }

    #[test]
    fn regen_options_are_quick() {
        assert!(regen_options().quick);
    }

    #[test]
    fn committed_bench_field_parses_flat_records() {
        let path = std::env::temp_dir().join("esvm_bench_field_test.json");
        std::fs::write(
            &path,
            "{\n  \"benchmark\": \"x\",\n  \"optimised_seconds\": 0.004531,\n  \"speedup\": 15.59\n}\n",
        )
        .unwrap();
        let p = path.to_str().unwrap();
        assert_eq!(committed_bench_field(p, "optimised_seconds"), Some(0.004531));
        assert_eq!(committed_bench_field(p, "speedup"), Some(15.59));
        assert_eq!(committed_bench_field(p, "missing"), None);
        assert_eq!(committed_bench_field("/nonexistent/x.json", "a"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn regression_guard_accepts_within_margin_and_missing_baselines() {
        assert_no_regression("t", 1.04, Some(1.0), 0.05);
        assert_no_regression("t", 10.0, None, 0.05);
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn regression_guard_rejects_beyond_margin() {
        assert_no_regression("t", 1.06, Some(1.0), 0.05);
    }

    #[test]
    fn pair_timer_reports_envelopes_and_noise() {
        let pair = time_pair_best(5, || 1.0, || 2.0);
        assert!(pair.best_f > 0.0 && pair.best_g > 0.0);
        assert!(pair.ratio_noise >= 0.0 && pair.ratio_noise.is_finite());
    }
}
