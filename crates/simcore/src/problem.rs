//! The allocation problem instance.

use crate::{Error, Interval, PowerModel, Resources, Result, ServerSpec, TimeUnit, Vm};
use serde::{Deserialize, Serialize};

/// An instance of the paper's allocation problem: `m` VMs, `n`
/// non-homogeneous servers, a planning horizon `[min start, T]`.
///
/// Invariants enforced at construction:
///
/// * at least one server;
/// * VM ids are dense `0..m` and server ids dense `0..n` (so ids can be
///   used as vector indices throughout the workspace);
/// * every VM fits on at least one *empty* server (otherwise no feasible
///   allocation exists and every algorithm would fail).
///
/// # Example
///
/// ```
/// use esvm_simcore::{AllocationProblem, Interval, PowerModel, Resources, ServerSpec, Vm};
/// let problem = AllocationProblem::new(
///     vec![ServerSpec::new(0, Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)],
///     vec![Vm::new(0, Resources::new(1.0, 1.7), Interval::new(1, 9))],
/// )?;
/// assert_eq!(problem.vm_count(), 1);
/// assert_eq!(problem.horizon(), 9);
/// # Ok::<(), esvm_simcore::Error>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationProblem {
    servers: Vec<ServerSpec>,
    vms: Vec<Vm>,
    horizon: TimeUnit,
}

impl AllocationProblem {
    /// Builds a problem, validating the invariants above.
    ///
    /// # Errors
    ///
    /// * [`Error::NoServers`] if `servers` is empty;
    /// * [`Error::NonDenseIds`] if ids are not `0..n` in order;
    /// * [`Error::InfeasibleVm`] if some VM fits no empty server.
    pub fn new(servers: Vec<ServerSpec>, vms: Vec<Vm>) -> Result<Self> {
        if servers.is_empty() {
            return Err(Error::NoServers);
        }
        if servers
            .iter()
            .enumerate()
            .any(|(i, s)| s.id().index() != i)
        {
            return Err(Error::NonDenseIds);
        }
        if vms.iter().enumerate().any(|(j, v)| v.id().index() != j) {
            return Err(Error::NonDenseIds);
        }
        for vm in &vms {
            if !servers
                .iter()
                .any(|s| vm.demand().fits_within(s.capacity()))
            {
                return Err(Error::InfeasibleVm(vm.id()));
            }
        }
        let horizon = vms.iter().map(Vm::end).max().unwrap_or(0);
        Ok(Self {
            servers,
            vms,
            horizon,
        })
    }

    /// The servers, indexed by [`ServerId`](crate::ServerId).
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// The VMs, indexed by [`VmId`](crate::VmId).
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Number of servers `n`.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of VMs `m`.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The planning horizon `T`: the latest finishing time of any VM
    /// (0 when there is no VM).
    pub fn horizon(&self) -> TimeUnit {
        self.horizon
    }

    /// VM indices sorted by increasing start time (ties broken by id).
    /// Both MIEC and FFPS process VMs in this order (Section III).
    pub fn vms_by_start_time(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.vms.len()).collect();
        order.sort_by_key(|&j| (self.vms[j].start(), self.vms[j].id()));
        order
    }

    /// Streams the VM records in arrival order (start time, ties by
    /// id) — the order every arrival-driven allocator consumes them and
    /// the order the ESVT columnar trace format stores them on disk.
    /// Code written against a streamed trace source runs unchanged over
    /// an in-memory problem through this view.
    pub fn stream_records(&self) -> impl Iterator<Item = &Vm> + '_ {
        self.vms_by_start_time()
            .into_iter()
            .map(move |j| &self.vms[j])
    }

    /// Visits every VM record in arrival order; the closure-driven twin
    /// of [`AllocationProblem::stream_records`] for call sites that
    /// mirror a streaming reader's `for_each` shape.
    pub fn for_each_record<F: FnMut(&Vm)>(&self, mut f: F) {
        for vm in self.stream_records() {
            f(vm);
        }
    }

    /// Aggregate statistics of the instance (diagnostics, logging).
    pub fn stats(&self) -> ProblemStats {
        let total_cpu_time: f64 = self.vms.iter().map(Vm::cpu_time).sum();
        let total_mem_time: f64 = self
            .vms
            .iter()
            .map(|v| v.demand().mem * v.duration() as f64)
            .sum();
        let capacity: Resources = self.servers.iter().map(|s| s.capacity()).sum();
        let horizon = self.horizon.max(1) as f64;
        ProblemStats {
            vm_count: self.vm_count(),
            server_count: self.server_count(),
            horizon: self.horizon,
            mean_vm_duration: if self.vms.is_empty() {
                0.0
            } else {
                self.vms.iter().map(|v| v.duration() as f64).sum::<f64>()
                    / self.vms.len() as f64
            },
            offered_cpu_load: total_cpu_time / (capacity.cpu * horizon),
            offered_mem_load: total_mem_time / (capacity.mem * horizon),
        }
    }
}

/// Aggregate statistics of a problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemStats {
    /// Number of VMs `m`.
    pub vm_count: usize,
    /// Number of servers `n`.
    pub server_count: usize,
    /// Planning horizon `T`.
    pub horizon: TimeUnit,
    /// Mean VM duration in time units.
    pub mean_vm_duration: f64,
    /// Total CPU demand·time divided by total CPU capacity·horizon.
    pub offered_cpu_load: f64,
    /// Total memory demand·time divided by total memory capacity·horizon.
    pub offered_mem_load: f64,
}

/// Incremental builder for [`AllocationProblem`], assigning dense ids
/// automatically.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, PowerModel, ProblemBuilder, Resources};
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 5))
///     .vm(Resources::new(1.0, 1.0), Interval::new(3, 9))
///     .build()?;
/// assert_eq!(problem.server_count(), 1);
/// assert_eq!(problem.vm_count(), 2);
/// # Ok::<(), esvm_simcore::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProblemBuilder {
    servers: Vec<ServerSpec>,
    vms: Vec<Vm>,
}

impl ProblemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server with the next dense id.
    pub fn server(
        mut self,
        capacity: Resources,
        power: PowerModel,
        transition_cost: f64,
    ) -> Self {
        let id = self.servers.len() as u32;
        self.servers
            .push(ServerSpec::new(id, capacity, power, transition_cost));
        self
    }

    /// Adds a pre-built server spec, re-indexing it to the next dense id.
    pub fn server_spec(mut self, spec: ServerSpec) -> Self {
        let id = self.servers.len() as u32;
        self.servers.push(ServerSpec::new(
            id,
            spec.capacity(),
            *spec.power(),
            spec.transition_cost(),
        ));
        self
    }

    /// Adds a VM with the next dense id.
    pub fn vm(mut self, demand: Resources, interval: Interval) -> Self {
        let id = self.vms.len() as u32;
        self.vms.push(Vm::new(id, demand, interval));
        self
    }

    /// Finalises the problem.
    ///
    /// # Errors
    ///
    /// Same as [`AllocationProblem::new`].
    pub fn build(self) -> Result<AllocationProblem> {
        AllocationProblem::new(self.servers, self.vms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AllocationProblem {
        ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(Resources::new(8.0, 16.0), PowerModel::new(80.0, 200.0), 20.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(5, 9))
            .vm(Resources::new(1.0, 1.0), Interval::new(1, 20))
            .build()
            .unwrap()
    }

    #[test]
    fn horizon_is_latest_end() {
        assert_eq!(tiny().horizon(), 20);
    }

    #[test]
    fn vms_by_start_time_sorts() {
        assert_eq!(tiny().vms_by_start_time(), vec![1, 0]);
    }

    #[test]
    fn stream_records_yields_arrival_order() {
        let p = tiny();
        let streamed: Vec<u32> = p.stream_records().map(|v| v.id().0).collect();
        assert_eq!(streamed, vec![1, 0]);
        let mut visited = Vec::new();
        p.for_each_record(|vm| visited.push(vm.id().0));
        assert_eq!(visited, streamed);
    }

    #[test]
    fn rejects_empty_server_list() {
        assert_eq!(
            AllocationProblem::new(vec![], vec![]).unwrap_err(),
            Error::NoServers
        );
    }

    #[test]
    fn rejects_non_dense_ids() {
        let servers = vec![ServerSpec::new(
            1,
            Resources::new(1.0, 1.0),
            PowerModel::new(1.0, 2.0),
            0.0,
        )];
        assert_eq!(
            AllocationProblem::new(servers, vec![]).unwrap_err(),
            Error::NonDenseIds
        );
    }

    #[test]
    fn rejects_infeasible_vm() {
        let err = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .vm(Resources::new(5.0, 4.0), Interval::new(1, 2))
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InfeasibleVm(_)));
    }

    #[test]
    fn stats_report_offered_load() {
        let p = tiny();
        let s = p.stats();
        assert_eq!(s.vm_count, 2);
        assert_eq!(s.server_count, 2);
        assert_eq!(s.horizon, 20);
        assert!((s.mean_vm_duration - (5.0 + 20.0) / 2.0).abs() < 1e-12);
        // cpu time: 2*5 + 1*20 = 30; capacity 12 × horizon 20 = 240.
        assert!((s.offered_cpu_load - 30.0 / 240.0).abs() < 1e-12);
        // mem time: 4*5 + 1*20 = 40; capacity 24 × 20 = 480.
        assert!((s.offered_mem_load - 40.0 / 480.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vm_list_is_allowed() {
        let p = ProblemBuilder::new()
            .server(Resources::new(1.0, 1.0), PowerModel::new(1.0, 2.0), 0.0)
            .build()
            .unwrap();
        assert_eq!(p.vm_count(), 0);
        assert_eq!(p.horizon(), 0);
        assert_eq!(p.stats().mean_vm_duration, 0.0);
    }

    #[test]
    fn server_spec_is_reindexed() {
        let foreign = ServerSpec::new(
            7,
            Resources::new(2.0, 2.0),
            PowerModel::new(1.0, 2.0),
            0.5,
        );
        let p = ProblemBuilder::new().server_spec(foreign).build().unwrap();
        assert_eq!(p.servers()[0].id().index(), 0);
        assert_eq!(p.servers()[0].capacity(), Resources::new(2.0, 2.0));
    }
}
