//! Schedules: placements that may migrate VMs between servers.
//!
//! The paper "focuses on saving energy consumption by VM allocation
//! instead of migration" (Section V) and cites dynamic-migration
//! systems as the contrasting line of work. This module models that
//! contrast: a [`Schedule`] hosts each VM on a *sequence* of servers
//! over consecutive sub-intervals that partition its duration. Energy
//! accounting extends Eq. (17) with a migration term: moving a VM costs
//! `μ × memory` watt·time-units (copying a VM image is dominated by its
//! memory footprint; `μ` is the energy per GB moved).
//!
//! A plain [`Assignment`] is the special case with one piece per VM and
//! zero migrations ([`Schedule::from_assignment`]).

use crate::energy::segment_cost;
use crate::{
    AllocationProblem, Assignment, Error, Interval, Result, SegmentSet, ServerId, UsageProfile,
    VmId,
};
use serde::{Deserialize, Serialize};

/// One hosting piece: the VM lives on `server` throughout `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Piece {
    /// The hosting server.
    pub server: ServerId,
    /// The closed sub-interval of the VM's duration.
    pub interval: Interval,
}

/// A migrating placement: per VM, consecutive hosting pieces.
///
/// # Example
///
/// ```
/// use esvm_simcore::{
///     Interval, PowerModel, ProblemBuilder, Resources, Schedule, ServerId, VmId,
/// };
/// let problem = ProblemBuilder::new()
///     .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
///     .server(Resources::new(4.0, 8.0), PowerModel::new(40.0, 90.0), 50.0)
///     .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
///     .build()?;
/// let mut schedule = Schedule::new(&problem, 5.0);
/// schedule.host(VmId(0), ServerId(0), Interval::new(1, 4))?;
/// schedule.host(VmId(0), ServerId(1), Interval::new(5, 10))?; // migration
/// let audit = schedule.audit()?;
/// assert_eq!(audit.migrations, 1);
/// assert!((audit.migration_energy - 5.0 * 4.0).abs() < 1e-9);
/// # Ok::<(), esvm_simcore::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Schedule<'p> {
    problem: &'p AllocationProblem,
    /// Pieces per VM, kept sorted by start time.
    pieces: Vec<Vec<Piece>>,
    /// Usage per server (for capacity checks while building).
    usage: Vec<UsageProfile>,
    /// Energy per GB moved, in watt·time-units.
    migration_energy_per_gb: f64,
}

/// Audit results for a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAudit {
    /// Total energy including migrations, in watt·time-units.
    pub total_cost: f64,
    /// Server-side energy (run + idle + transitions).
    pub server_energy: f64,
    /// Energy spent moving VMs.
    pub migration_energy: f64,
    /// Number of migrations across all VMs.
    pub migrations: u64,
}

impl<'p> Schedule<'p> {
    /// Creates an empty schedule with the given migration energy per GB.
    ///
    /// # Panics
    ///
    /// Panics if `migration_energy_per_gb` is negative or not finite.
    pub fn new(problem: &'p AllocationProblem, migration_energy_per_gb: f64) -> Self {
        assert!(
            migration_energy_per_gb.is_finite() && migration_energy_per_gb >= 0.0,
            "migration energy must be finite and non-negative"
        );
        Self {
            problem,
            pieces: vec![Vec::new(); problem.vm_count()],
            usage: problem.servers().iter().map(|_| UsageProfile::new()).collect(),
            migration_energy_per_gb,
        }
    }

    /// Lifts a whole-duration assignment into a schedule (no
    /// migrations).
    pub fn from_assignment(
        assignment: &Assignment<'p>,
        migration_energy_per_gb: f64,
    ) -> Result<Self> {
        let problem = assignment.problem();
        let mut schedule = Schedule::new(problem, migration_energy_per_gb);
        for (j, slot) in assignment.placement().iter().enumerate() {
            if let Some(server) = slot {
                let vm = &problem.vms()[j];
                schedule.host(vm.id(), *server, vm.interval())?;
            }
        }
        Ok(schedule)
    }

    /// The problem being scheduled.
    pub fn problem(&self) -> &'p AllocationProblem {
        self.problem
    }

    /// The migration energy per GB.
    pub fn migration_energy_per_gb(&self) -> f64 {
        self.migration_energy_per_gb
    }

    /// The pieces of one VM, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn pieces_of(&self, vm: VmId) -> &[Piece] {
        &self.pieces[vm.index()]
    }

    /// Whether `server` has spare capacity for `vm`'s demand throughout
    /// `interval`.
    pub fn fits(&self, vm: VmId, server: ServerId, interval: Interval) -> bool {
        let demand = self.problem.vms()[vm.index()].demand();
        let spec = &self.problem.servers()[server.index()];
        self.usage[server.index()].fits(interval, demand, spec.capacity())
    }

    /// Hosts `vm` on `server` throughout `interval`.
    ///
    /// Pieces must be added in time order and must not overlap previous
    /// pieces; the audit later verifies they exactly partition the VM's
    /// duration.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownVm`] / [`Error::UnknownServer`] for bad ids;
    /// * [`Error::AlreadyPlaced`] if the interval overlaps or precedes an
    ///   existing piece of the VM, or lies outside the VM's duration;
    /// * [`Error::CapacityExceeded`] if the server lacks room in some
    ///   time unit.
    pub fn host(&mut self, vm: VmId, server: ServerId, interval: Interval) -> Result<()> {
        let v = self
            .problem
            .vms()
            .get(vm.index())
            .ok_or(Error::UnknownVm(vm))?;
        if server.index() >= self.problem.server_count() {
            return Err(Error::UnknownServer(server));
        }
        if !v.interval().contains_interval(interval) {
            return Err(Error::AlreadyPlaced(vm));
        }
        if let Some(last) = self.pieces[vm.index()].last() {
            if interval.start() <= last.interval.end() {
                return Err(Error::AlreadyPlaced(vm));
            }
        }
        if !self.fits(vm, server, interval) {
            return Err(Error::CapacityExceeded { vm, server });
        }
        self.usage[server.index()].add(interval, v.demand());
        self.pieces[vm.index()].push(Piece { server, interval });
        Ok(())
    }

    /// Truncates the final piece of `vm` at `end` (inclusive) so a later
    /// piece can re-host the remainder elsewhere — the primitive a
    /// migration policy uses to move a *running* VM.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownVm`] if the VM has no pieces or `end` is outside
    /// the final piece.
    pub fn truncate_last_piece(&mut self, vm: VmId, end: crate::TimeUnit) -> Result<()> {
        let pieces = self
            .pieces
            .get_mut(vm.index())
            .ok_or(Error::UnknownVm(vm))?;
        let last = pieces.last_mut().ok_or(Error::UnknownVm(vm))?;
        if !last.interval.contains(end) || end == last.interval.end() {
            if end == last.interval.end() {
                return Ok(()); // no-op
            }
            return Err(Error::UnknownVm(vm));
        }
        let removed = Interval::new(end + 1, last.interval.end());
        let demand = self.problem.vms()[vm.index()].demand();
        self.usage[last.server.index()].remove(removed, demand);
        last.interval = Interval::new(last.interval.start(), end);
        Ok(())
    }

    /// Number of migrations (piece boundaries changing server).
    pub fn migration_count(&self) -> u64 {
        self.pieces
            .iter()
            .map(|pieces| {
                pieces
                    .windows(2)
                    .filter(|w| w[0].server != w[1].server)
                    .count() as u64
            })
            .sum()
    }

    /// Audits the schedule: verifies coverage and capacity, and computes
    /// total energy (servers + migrations).
    ///
    /// # Errors
    ///
    /// * [`Error::Unplaced`] if some VM's pieces do not exactly cover its
    ///   duration;
    /// * [`Error::CapacityExceeded`] on any per-time-unit violation.
    pub fn audit(&self) -> Result<ScheduleAudit> {
        // Coverage: pieces partition each VM's interval.
        for (j, pieces) in self.pieces.iter().enumerate() {
            let vm = &self.problem.vms()[j];
            let mut cursor = vm.start();
            for (k, piece) in pieces.iter().enumerate() {
                if piece.interval.start() != cursor {
                    return Err(Error::Unplaced(vm.id()));
                }
                cursor = match piece.interval.end().checked_add(1) {
                    Some(c) => c,
                    None if k + 1 == pieces.len() => {
                        // Piece reaches TimeUnit::MAX; must be the last.
                        piece.interval.end()
                    }
                    None => return Err(Error::Unplaced(vm.id())),
                };
            }
            if pieces.is_empty() || cursor != vm.end() + 1 {
                return Err(Error::Unplaced(vm.id()));
            }
        }

        // Rebuild per-server state from scratch.
        let n = self.problem.server_count();
        let mut usage: Vec<UsageProfile> = (0..n).map(|_| UsageProfile::new()).collect();
        let mut segments: Vec<SegmentSet> = vec![SegmentSet::new(); n];
        let mut run_cost = vec![0.0; n];
        for (j, pieces) in self.pieces.iter().enumerate() {
            let vm = &self.problem.vms()[j];
            for piece in pieces {
                let i = piece.server.index();
                let spec = &self.problem.servers()[i];
                if !usage[i].fits(piece.interval, vm.demand(), spec.capacity()) {
                    return Err(Error::CapacityExceeded {
                        vm: vm.id(),
                        server: piece.server,
                    });
                }
                usage[i].add(piece.interval, vm.demand());
                segments[i].insert(piece.interval);
                run_cost[i] +=
                    spec.power_per_cpu_unit() * vm.demand().cpu * piece.interval.len() as f64;
            }
        }

        let server_energy: f64 = (0..n)
            .map(|i| run_cost[i] + segment_cost(&self.problem.servers()[i], &segments[i]))
            .sum();
        let migrations = self.migration_count();
        let migration_energy: f64 = self
            .pieces
            .iter()
            .enumerate()
            .map(|(j, pieces)| {
                let moves = pieces
                    .windows(2)
                    .filter(|w| w[0].server != w[1].server)
                    .count() as f64;
                moves * self.migration_energy_per_gb * self.problem.vms()[j].demand().mem
            })
            .sum();

        Ok(ScheduleAudit {
            total_cost: server_energy + migration_energy,
            server_energy,
            migration_energy,
            migrations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PowerModel, ProblemBuilder, Resources};

    fn problem() -> AllocationProblem {
        ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .server(Resources::new(4.0, 8.0), PowerModel::new(40.0, 90.0), 50.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 10))
            .vm(Resources::new(1.0, 2.0), Interval::new(5, 8))
            .build()
            .unwrap()
    }

    #[test]
    fn from_assignment_has_no_migrations_and_same_cost() {
        let p = problem();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(1)).unwrap();
        let s = Schedule::from_assignment(&a, 7.0).unwrap();
        let audit = s.audit().unwrap();
        assert_eq!(audit.migrations, 0);
        assert_eq!(audit.migration_energy, 0.0);
        assert!((audit.total_cost - a.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn migration_is_charged_per_gb() {
        let p = problem();
        let mut s = Schedule::new(&p, 3.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 6)).unwrap();
        s.host(VmId(0), ServerId(1), Interval::new(7, 10)).unwrap();
        s.host(VmId(1), ServerId(1), Interval::new(5, 8)).unwrap();
        let audit = s.audit().unwrap();
        assert_eq!(audit.migrations, 1);
        assert!((audit.migration_energy - 3.0 * 4.0).abs() < 1e-9);
        assert!(audit.total_cost > audit.server_energy);
    }

    #[test]
    fn consecutive_pieces_on_same_server_are_not_migrations() {
        let p = problem();
        let mut s = Schedule::new(&p, 3.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 6)).unwrap();
        s.host(VmId(0), ServerId(0), Interval::new(7, 10)).unwrap();
        s.host(VmId(1), ServerId(0), Interval::new(5, 8)).unwrap();
        assert_eq!(s.migration_count(), 0);
        assert_eq!(s.audit().unwrap().migrations, 0);
    }

    #[test]
    fn coverage_gaps_are_rejected() {
        let p = problem();
        let mut s = Schedule::new(&p, 0.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 5)).unwrap();
        // [6, 10] missing for vm0; vm1 fully placed.
        s.host(VmId(1), ServerId(1), Interval::new(5, 8)).unwrap();
        assert_eq!(s.audit().unwrap_err(), Error::Unplaced(VmId(0)));
    }

    #[test]
    fn pieces_outside_duration_are_rejected() {
        let p = problem();
        let mut s = Schedule::new(&p, 0.0);
        assert!(s.host(VmId(0), ServerId(0), Interval::new(0, 5)).is_err());
        assert!(s.host(VmId(1), ServerId(0), Interval::new(5, 9)).is_err());
    }

    #[test]
    fn capacity_is_enforced_per_piece() {
        let p = ProblemBuilder::new()
            .server(Resources::new(2.0, 4.0), PowerModel::new(10.0, 20.0), 5.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .vm(Resources::new(2.0, 4.0), Interval::new(3, 6))
            .build()
            .unwrap();
        let mut s = Schedule::new(&p, 0.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 4)).unwrap();
        assert_eq!(
            s.host(VmId(1), ServerId(0), Interval::new(3, 6)).unwrap_err(),
            Error::CapacityExceeded {
                vm: VmId(1),
                server: ServerId(0),
            }
        );
        // But the non-overlapping tail is fine on the same server.
        assert!(s.fits(VmId(1), ServerId(0), Interval::new(5, 6)));
    }

    #[test]
    fn truncate_then_rehost_moves_a_running_vm() {
        let p = problem();
        let mut s = Schedule::new(&p, 1.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 10)).unwrap();
        s.host(VmId(1), ServerId(0), Interval::new(5, 8)).unwrap();
        // Move vm0's tail [6, 10] to server 1.
        s.truncate_last_piece(VmId(0), 5).unwrap();
        s.host(VmId(0), ServerId(1), Interval::new(6, 10)).unwrap();
        let audit = s.audit().unwrap();
        assert_eq!(audit.migrations, 1);
        // Server 0 usage after truncation frees capacity at t=6..10.
        assert!(s.fits(VmId(0), ServerId(0), Interval::new(9, 10)));
    }

    #[test]
    fn truncate_at_current_end_is_noop() {
        let p = problem();
        let mut s = Schedule::new(&p, 1.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 10)).unwrap();
        s.truncate_last_piece(VmId(0), 10).unwrap();
        assert_eq!(s.pieces_of(VmId(0)).len(), 1);
        assert_eq!(s.pieces_of(VmId(0))[0].interval, Interval::new(1, 10));
    }

    #[test]
    fn truncate_outside_last_piece_errors() {
        let p = problem();
        let mut s = Schedule::new(&p, 1.0);
        s.host(VmId(0), ServerId(0), Interval::new(1, 10)).unwrap();
        assert!(s.truncate_last_piece(VmId(0), 0).is_err());
        assert!(s.truncate_last_piece(VmId(1), 5).is_err()); // no pieces
    }

    #[test]
    fn out_of_order_pieces_are_rejected() {
        let p = problem();
        let mut s = Schedule::new(&p, 0.0);
        s.host(VmId(0), ServerId(0), Interval::new(5, 10)).unwrap();
        assert!(s.host(VmId(0), ServerId(1), Interval::new(1, 4)).is_err());
    }
}
