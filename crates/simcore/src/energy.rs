//! Per-server energy accounting — Eqs. (15)–(17) of the paper.
//!
//! The energy cost of server `s_i` hosting the VM set `V_i` over the
//! planning horizon is
//!
//! ```text
//! Cost_i =   Σ_{v_j ∈ V_i} W_ij                    (run cost, Eq. 3)
//!          + Σ_{[t,τ] ∈ BS_i} P_idle · (τ−t+1)     (busy segments, Eq. 15)
//!          + Σ_{[t,τ] ∈ IS_i} min{P_idle·(τ−t+1), α}  (idle segments, Eq. 16)
//!          + α · 1{V_i ≠ ∅}                        (initial switch-on)
//! ```
//!
//! The last term is not printed in Eq. (17) but is charged by the ILP
//! objective (Eq. 7 with `y_{i,0} = 0`) and required by the paper's own
//! argument that a VM landing in an all-asleep data center should prefer
//! the server with the smallest transition cost (Section III). See
//! DESIGN.md, "Substitutions".
//!
//! [`ServerLedger`] maintains this cost *incrementally*: the Minimum
//! Incremental Energy Cost heuristic asks "what would this server's cost
//! become if VM `j` were added?" once per candidate server per VM, so the
//! evaluation must not rescan the whole VM set.

use crate::{
    CoverageSet, EnergyBreakdown, Interval, Resources, SegmentSet, ServerSpec, UsageProfile, Vm,
};
use serde::{Deserialize, Serialize};

/// Energy cost of a set of busy segments on `spec`, per Eqs. (15)–(17)
/// plus the initial switch-on charge (see module docs). Excludes run
/// costs, which depend on the VMs rather than the segments.
pub fn segment_cost(spec: &ServerSpec, segments: &SegmentSet) -> f64 {
    if segments.is_empty() {
        return 0.0;
    }
    let busy = spec.idle_cost(segments.busy_time());
    let gaps: f64 = segments.gaps().map(|g| spec.gap_cost(g.len())).sum();
    busy + gaps + spec.transition_cost()
}

/// Full cost of hosting `vms` on `spec`: run costs plus [`segment_cost`]
/// of the induced busy segments. This is the reference (non-incremental)
/// implementation of Eq. (17); [`ServerLedger`] must always agree with it.
pub fn full_cost(spec: &ServerSpec, vms: &[Vm]) -> f64 {
    let run: f64 = vms.iter().map(|vm| spec.run_cost(vm)).sum();
    let segments: SegmentSet = vms.iter().map(Vm::interval).collect();
    run + segment_cost(spec, &segments)
}

/// Number of switch-on transitions performed by the switch-off policy:
/// one initial power-on plus one for every interior gap where switching
/// off is cheaper than idling.
pub fn transition_count(spec: &ServerSpec, segments: &SegmentSet) -> u64 {
    if segments.is_empty() {
        return 0;
    }
    1 + segments
        .gaps()
        .filter(|g| spec.switches_off_for_gap(g.len()))
        .count() as u64
}

/// Live energy/occupancy state of one server during allocation.
///
/// Tracks the hosted VMs' usage profile (for capacity checks), the merged
/// busy segments, the accumulated run cost, and a cached *integer*
/// decomposition of the segment cost (total busy time, kept-on gap time,
/// switch-off gap count), maintained incrementally on every
/// [`ServerLedger::host`]. This makes [`ServerLedger::cost`] O(1) and lets
/// [`ServerLedger::incremental_cost`] score a hypothetical placement as
/// pure arithmetic over a [`SegmentSet::insertion_delta`] — no clone, no
/// rescan of resident segments.
///
/// Because everything except the run-cost accumulator is cached as
/// integers, [`ServerLedger::cost`] is *defined* as the left-to-right sum
/// of the [`ServerLedger::energy_breakdown`] terms — the Eq. 7
/// decomposition identity `run + idle + transition == cost()` holds
/// bit-for-bit, by construction, at every point of any host/unhost
/// history.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, PowerModel, Resources, ServerLedger, ServerSpec, Vm};
/// let spec = ServerSpec::new(0, Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 150.0);
/// let mut ledger = ServerLedger::new(spec);
/// let vm = Vm::new(0, Resources::new(4.0, 4.0), Interval::new(1, 10));
/// assert!(ledger.fits(&vm));
/// let delta = ledger.incremental_cost(&vm);
/// ledger.host(&vm);
/// assert!((ledger.cost() - delta).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerLedger {
    spec: ServerSpec,
    usage: UsageProfile,
    segments: SegmentSet,
    /// Per-time-unit occupancy counts of the hosted pieces. `segments`
    /// alone cannot undo a host (overlapping VMs merge); the counts say
    /// which busy time a leaving VM frees. See [`CoverageSet`].
    #[serde(default)]
    coverage: CoverageSet,
    run_cost: f64,
    hosted: u32,
    /// Cached `segments.busy_time()`, updated on every host/unhost.
    busy_time: u64,
    /// Cached total length of the interior gaps the switch-off policy
    /// keeps idling through (`!switches_off_for_gap`). Together with
    /// `busy_time` this is the total active time priced at `P_idle`.
    #[serde(default)]
    kept_on_gap_units: u64,
    /// Cached count of the interior gaps the switch-off policy sleeps
    /// through; each one costs a fresh `α` switch-on.
    #[serde(default)]
    off_gaps: u64,
}

/// Snapshot of a [`ServerLedger`]'s floating-point cost accumulator.
///
/// A balanced `unhost`/`host` probe cycle restores all integer state
/// (segments, coverage, busy time, gap caches, hosted count) exactly, but
/// the `f64` run-cost accumulator can pick up last-bit rounding residue
/// per cycle. Refinement loops that probe thousands of hypothetical moves
/// take a checkpoint first and [`ServerLedger::restore_costs`] after
/// reverting, so the cache cannot drift from the rescan truth.
#[derive(Debug, Clone, Copy)]
pub struct LedgerCheckpoint {
    run_cost: f64,
}

impl ServerLedger {
    /// Creates a ledger for an empty (power-saving) server.
    pub fn new(spec: ServerSpec) -> Self {
        Self {
            spec,
            usage: UsageProfile::new(),
            segments: SegmentSet::new(),
            coverage: CoverageSet::new(),
            run_cost: 0.0,
            hosted: 0,
            busy_time: 0,
            kept_on_gap_units: 0,
            off_gaps: 0,
        }
    }

    /// The server specification.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Number of VMs hosted so far.
    pub fn hosted_count(&self) -> u32 {
        self.hosted
    }

    /// The merged busy segments induced by the hosted VMs.
    pub fn segments(&self) -> &SegmentSet {
        &self.segments
    }

    /// The resource usage profile of the hosted VMs.
    pub fn usage(&self) -> &UsageProfile {
        &self.usage
    }

    /// Accumulated run cost `Σ W_ij` of the hosted VMs.
    pub fn run_cost(&self) -> f64 {
        self.run_cost
    }

    /// Whether `vm` fits on this server **throughout its duration**
    /// (both CPU and memory, every time unit — constraints (9)–(10)).
    pub fn fits(&self, vm: &Vm) -> bool {
        self.usage
            .fits(vm.interval(), vm.demand(), self.spec.capacity())
    }

    /// Current total cost of this server (Eq. 17 + initial switch-on).
    ///
    /// O(1): served from the incrementally maintained integer caches
    /// rather than a rescan of the segments. Defined as the
    /// left-to-right sum of the [`ServerLedger::energy_breakdown`]
    /// terms, so `breakdown.total() == cost()` holds bit-for-bit.
    pub fn cost(&self) -> f64 {
        self.energy_breakdown().total()
    }

    /// Eq. 7 decomposition of [`ServerLedger::cost`] into its three
    /// physical terms:
    ///
    /// * `run` — `Σ W_ij`, the accumulated run cost of the hosted VMs;
    /// * `idle` — `P_idle` times the active time (busy segments plus
    ///   the interior gaps too short to be worth sleeping through);
    /// * `transition` — `α` times [`ServerLedger::transition_count`].
    ///
    /// The identity `run + idle + transition == cost()` is exact
    /// (bit-for-bit): `cost()` is computed *from* this decomposition,
    /// whose non-run terms are each a single product over integer
    /// caches.
    pub fn energy_breakdown(&self) -> EnergyBreakdown {
        if self.segments.is_empty() {
            return EnergyBreakdown { run: self.run_cost, idle: 0.0, transition: 0.0 };
        }
        EnergyBreakdown {
            run: self.run_cost,
            idle: self.spec.idle_cost(self.busy_time + self.kept_on_gap_units),
            transition: self.spec.transition_cost() * (1 + self.off_gaps) as f64,
        }
    }

    /// Number of switch-on transitions the switch-off policy performs on
    /// this server: one initial power-on plus one per interior gap it
    /// sleeps through. O(1), and always equal to the free function
    /// [`transition_count`] over [`ServerLedger::segments`].
    pub fn transition_count(&self) -> u64 {
        if self.segments.is_empty() {
            0
        } else {
            1 + self.off_gaps
        }
    }

    /// Cost the server would have if `vm` were placed on it, without
    /// mutating the ledger. Does **not** re-check capacity; callers filter
    /// with [`ServerLedger::fits`] first, as the heuristic's candidate set
    /// `S_j` does.
    ///
    /// Clones and rescans the segment set; retained as the reference
    /// oracle for [`ServerLedger::incremental_cost`], which scoring paths
    /// should use instead.
    pub fn cost_with(&self, vm: &Vm) -> f64 {
        let segments = self.segments.with_inserted(vm.interval());
        self.run_cost + self.spec.run_cost(vm) + segment_cost(&self.spec, &segments)
    }

    /// Incremental cost of adding `vm` — the quantity the MIEC heuristic
    /// minimises over the candidate set. Always non-negative: adding a VM
    /// adds run cost and never shrinks busy time.
    ///
    /// Computed from a [`SegmentSet::insertion_delta`]: `O(log n +
    /// merged)` arithmetic with no clone and no allocation, against the
    /// seed implementation's full copy-and-rescan per candidate.
    pub fn incremental_cost(&self, vm: &Vm) -> f64 {
        let d = self
            .segments
            .insertion_delta(vm.interval(), |len| self.spec.gap_cost(len));
        let switch_on = if d.first_segment {
            self.spec.transition_cost()
        } else {
            0.0
        };
        self.spec.run_cost(vm) + self.spec.idle_cost(d.busy_added) + d.gap_cost_delta + switch_on
    }

    /// Reference implementation of [`ServerLedger::incremental_cost`]:
    /// the original `cost_with(vm) − cost()` difference of two full
    /// rescans. Kept as the test/bench oracle the delta-based scoring is
    /// checked against.
    pub fn reference_incremental_cost(&self, vm: &Vm) -> f64 {
        self.cost_with(vm) - (self.run_cost + segment_cost(&self.spec, &self.segments))
    }

    /// Run cost of a constant `demand` over `interval` — the piece-level
    /// form of [`ServerSpec::run_cost`], bit-identical to it when the
    /// piece is a whole VM.
    fn piece_run_cost(&self, demand: Resources, interval: Interval) -> f64 {
        self.spec.power_per_cpu_unit() * (demand.cpu * interval.len() as f64)
    }

    /// Length contribution of a gap the switch-off policy idles through
    /// (0 when it sleeps). Used as an integer-valued gap measure for
    /// [`SegmentSet::insertion_delta`]/[`SegmentSet::removal_delta`]:
    /// every value and every partial sum is an exact small integer in
    /// `f64`, so the resulting delta is exact.
    fn kept_on_units(&self, len: u64) -> f64 {
        if self.spec.switches_off_for_gap(len) {
            0.0
        } else {
            len as f64
        }
    }

    /// Indicator of a gap the switch-off policy sleeps through. Exact
    /// integer-valued gap measure, like [`ServerLedger::kept_on_units`].
    fn off_gap(&self, len: u64) -> f64 {
        if self.spec.switches_off_for_gap(len) {
            1.0
        } else {
            0.0
        }
    }

    /// Applies an exactly-integer-valued `f64` delta to a `u64` cache.
    /// Saturates at zero in release builds so an adversarial input that
    /// desynchronises the caches degrades the decomposition instead of
    /// wrapping to an astronomically wrong value.
    fn apply_int_delta(value: u64, delta: f64) -> u64 {
        debug_assert!(delta.fract() == 0.0, "gap-measure delta {delta} is not an integer");
        let next = (value as i64).saturating_add(delta as i64);
        debug_assert!(next >= 0, "gap-measure cache went negative: {value} {delta:+}");
        next.max(0) as u64
    }

    /// Debug check: the integer gap caches match a rescan of the
    /// segment set. (Compiled in all profiles — `debug_assert!` still
    /// type-checks its condition in release builds.)
    fn gap_caches_match_rescan(&self) -> bool {
        let kept: u64 = self
            .segments
            .gaps()
            .filter(|g| !self.spec.switches_off_for_gap(g.len()))
            .map(|g| g.len())
            .sum();
        let off = self
            .segments
            .gaps()
            .filter(|g| self.spec.switches_off_for_gap(g.len()))
            .count() as u64;
        self.kept_on_gap_units == kept && self.off_gaps == off
    }

    /// Commits `vm` to this server, updating usage, coverage, segments
    /// and the cached cost decomposition.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the VM does not fit; callers must check
    /// [`ServerLedger::fits`] first.
    pub fn host(&mut self, vm: &Vm) {
        debug_assert!(self.fits(vm), "hosting {vm} would violate capacity");
        self.host_piece(vm.demand(), vm.interval());
    }

    /// Removes a previously hosted `vm`, updating usage, coverage,
    /// segments and the cached cost decomposition, and returns the
    /// realized cost decrease — exactly what
    /// [`ServerLedger::decremental_cost`] predicted.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the VM's interval is not fully covered
    /// (i.e. it was never hosted here).
    pub fn unhost(&mut self, vm: &Vm) -> f64 {
        self.unhost_piece(vm.demand(), vm.interval())
    }

    /// Piece-level [`ServerLedger::host`]: commits a constant `demand`
    /// over `interval`. The migration layer hosts VM *tails* rather than
    /// whole VMs, so the ledger accepts any (demand, interval) piece;
    /// `hosted` counts outstanding pieces.
    pub fn host_piece(&mut self, demand: Resources, interval: Interval) {
        // Two integer-valued gap measures collected in a single delta
        // walk: they maintain the caches exactly, which is what makes
        // the Eq. 7 decomposition (and cost()) history-independent.
        let d = self
            .segments
            .insertion_delta(interval, |len| (self.kept_on_units(len), self.off_gap(len)));
        self.busy_time += d.busy_added;
        self.kept_on_gap_units = Self::apply_int_delta(self.kept_on_gap_units, d.gap_cost_delta.0);
        self.off_gaps = Self::apply_int_delta(self.off_gaps, d.gap_cost_delta.1);
        self.usage.add(interval, demand);
        self.coverage.insert(interval);
        self.segments.insert(interval);
        self.run_cost += self.piece_run_cost(demand, interval);
        self.hosted += 1;
        debug_assert_eq!(self.busy_time, self.segments.busy_time());
        debug_assert!(self.gap_caches_match_rescan(), "gap caches diverged from rescan");
        debug_assert!(
            (self.cost() - (self.run_cost + segment_cost(&self.spec, &self.segments))).abs()
                < 1e-6,
            "cached cost diverged from rescan"
        );
    }

    /// Checked [`ServerLedger::host`]: rejects demands and intervals
    /// whose accounting would leave the representable range instead of
    /// silently corrupting the accumulators.
    ///
    /// # Errors
    ///
    /// [`Error::EnergyOverflow`](crate::Error::EnergyOverflow) when the
    /// demand is non-finite or negative, the piece's run cost is not
    /// finite, or the busy-time accumulator would overflow. The ledger
    /// is unchanged on error.
    pub fn try_host(&mut self, vm: &Vm) -> crate::Result<()> {
        self.try_host_piece(vm.demand(), vm.interval())
    }

    /// Piece-level [`ServerLedger::try_host`].
    ///
    /// # Errors
    ///
    /// [`Error::EnergyOverflow`](crate::Error::EnergyOverflow) on
    /// non-finite/negative demand, non-finite run cost, or busy-time
    /// overflow; the ledger is unchanged on error.
    pub fn try_host_piece(&mut self, demand: Resources, interval: Interval) -> crate::Result<()> {
        let overflow = crate::Error::EnergyOverflow { server: self.spec.id() };
        if !demand.cpu.is_finite() || !demand.mem.is_finite() || demand.cpu < 0.0 || demand.mem < 0.0
        {
            return Err(overflow);
        }
        let run = self.piece_run_cost(demand, interval);
        if !run.is_finite() || !(self.run_cost + run).is_finite() {
            return Err(overflow);
        }
        if self.busy_time.checked_add(interval.len()).is_none() {
            return Err(overflow);
        }
        self.host_piece(demand, interval);
        Ok(())
    }

    /// Piece-level [`ServerLedger::unhost`]: removes a previously hosted
    /// piece and returns the realized cost decrease. `O(log n + touched)`
    /// — the busy time the piece covered exclusively leaves the segment
    /// set via [`SegmentSet::removal_delta`] arithmetic; no rescan.
    pub fn unhost_piece(&mut self, demand: Resources, interval: Interval) -> f64 {
        debug_assert!(self.hosted > 0, "unhost from an empty ledger");
        debug_assert!(
            self.coverage.covers(interval),
            "unhosting a piece that was never hosted"
        );
        let mut freed = 0u64;
        let mut gap_delta = 0.0;
        let mut kept_delta = 0.0;
        let mut off_delta = 0.0;
        let mut last = false;
        // Score every exclusively-covered run against the pre-removal
        // segments (the runs are separated by surviving busy time, so
        // their deltas are exactly additive), then mutate. One delta
        // walk per run collects the priced measure (feeding the
        // realized-decrease return value) together with the two
        // integer-valued measures maintaining the decomposition caches.
        for run in self.coverage.exclusive_runs(interval) {
            let d = self.segments.removal_delta(run, |len| {
                (self.spec.gap_cost(len), self.kept_on_units(len), self.off_gap(len))
            });
            freed += d.busy_removed;
            gap_delta += d.gap_cost_delta.0;
            kept_delta += d.gap_cost_delta.1;
            off_delta += d.gap_cost_delta.2;
            last |= d.last_segment;
        }
        for run in self.coverage.exclusive_runs(interval) {
            self.segments.remove(run);
        }
        self.busy_time -= freed;
        self.kept_on_gap_units = Self::apply_int_delta(self.kept_on_gap_units, kept_delta);
        self.off_gaps = Self::apply_int_delta(self.off_gaps, off_delta);
        self.usage.remove(interval, demand);
        self.coverage.remove(interval);
        let run_cost = self.piece_run_cost(demand, interval);
        self.run_cost -= run_cost;
        self.hosted -= 1;
        debug_assert_eq!(self.busy_time, self.segments.busy_time());
        debug_assert!(self.gap_caches_match_rescan(), "gap caches diverged from rescan");
        debug_assert!(
            (self.cost() - (self.run_cost + segment_cost(&self.spec, &self.segments))).abs()
                < 1e-6,
            "cached cost diverged from rescan"
        );
        let refund = if last { self.spec.transition_cost() } else { 0.0 };
        run_cost + self.spec.idle_cost(freed) - gap_delta + refund
    }

    /// Decremental cost of removing `vm` — how much the server's cost
    /// drops when the VM leaves. The exact mirror of
    /// [`ServerLedger::incremental_cost`], and the quantity the
    /// local-search and migration layers combine into move scores
    /// (`relocate = incremental(dst) − decremental(src)`).
    ///
    /// Computed from [`SegmentSet::removal_delta`] over the VM's
    /// exclusively-covered runs: `O(log n + touched)` arithmetic with no
    /// clone and no allocation. Always non-negative.
    pub fn decremental_cost(&self, vm: &Vm) -> f64 {
        self.decremental_piece_cost(vm.demand(), vm.interval())
    }

    /// Piece-level [`ServerLedger::decremental_cost`].
    pub fn decremental_piece_cost(&self, demand: Resources, interval: Interval) -> f64 {
        debug_assert!(
            self.coverage.covers(interval),
            "scoring removal of a piece that was never hosted"
        );
        let mut freed = 0u64;
        let mut gap_delta = 0.0;
        let mut last = false;
        for run in self.coverage.exclusive_runs(interval) {
            let d = self
                .segments
                .removal_delta(run, |len| self.spec.gap_cost(len));
            freed += d.busy_removed;
            gap_delta += d.gap_cost_delta;
            last |= d.last_segment;
        }
        let refund = if last { self.spec.transition_cost() } else { 0.0 };
        self.piece_run_cost(demand, interval) + self.spec.idle_cost(freed) - gap_delta + refund
    }

    /// Piece-level [`ServerLedger::incremental_cost`]: marginal cost of
    /// hosting a constant `demand` over `interval`.
    pub fn incremental_piece_cost(&self, demand: Resources, interval: Interval) -> f64 {
        let d = self
            .segments
            .insertion_delta(interval, |len| self.spec.gap_cost(len));
        let switch_on = if d.first_segment {
            self.spec.transition_cost()
        } else {
            0.0
        };
        self.piece_run_cost(demand, interval)
            + self.spec.idle_cost(d.busy_added)
            + d.gap_cost_delta
            + switch_on
    }

    /// Whether a constant `demand` over `interval` fits throughout.
    pub fn fits_piece(&self, demand: Resources, interval: Interval) -> bool {
        self.usage.fits(interval, demand, self.spec.capacity())
    }

    /// Whether `incoming` would fit if `outgoing` (hosted here) left
    /// first — the swap feasibility check, evaluated in one pass over the
    /// usage breakpoints with no clone.
    pub fn fits_replacing(&self, incoming: &Vm, outgoing: &Vm) -> bool {
        self.usage.fits_replacing(
            incoming.interval(),
            incoming.demand(),
            outgoing.interval(),
            outgoing.demand(),
            self.spec.capacity(),
        )
    }

    /// Reference implementation of [`ServerLedger::decremental_cost`]:
    /// clones the coverage counts, rebuilds the post-removal segment set
    /// and rescans both. Kept as the test/bench oracle the delta-based
    /// scoring is checked against.
    pub fn reference_decremental_cost(&self, vm: &Vm) -> f64 {
        let mut coverage = self.coverage.clone();
        coverage.remove(vm.interval());
        let remaining = coverage.covered_segments();
        self.spec.run_cost(vm) + segment_cost(&self.spec, &self.segments)
            - segment_cost(&self.spec, &remaining)
    }

    /// Snapshots the floating-point run-cost accumulator; see
    /// [`LedgerCheckpoint`]. (The segment-cost caches are integers and
    /// round-trip balanced probe cycles exactly, so only the run cost
    /// needs checkpointing.)
    pub fn checkpoint(&self) -> LedgerCheckpoint {
        LedgerCheckpoint { run_cost: self.run_cost }
    }

    /// Restores the accumulator captured by
    /// [`ServerLedger::checkpoint`]. Only valid after the hosted pieces
    /// have been restored to their checkpointed state (probe cycles are
    /// balanced); snaps away the per-cycle floating-point residue.
    pub fn restore_costs(&mut self, checkpoint: LedgerCheckpoint) {
        self.run_cost = checkpoint.run_cost;
    }

    /// Spare capacity at time `t`.
    pub fn spare_at(&self, t: u32) -> Resources {
        self.spec.capacity().saturating_sub(self.usage.usage_at(t))
    }

    /// Peak usage over an interval (diagnostic).
    pub fn peak_over(&self, interval: Interval) -> Resources {
        self.usage.peak_over(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerModel;

    fn spec(alpha: f64) -> ServerSpec {
        ServerSpec::new(
            0,
            Resources::new(10.0, 20.0),
            PowerModel::new(100.0, 300.0),
            alpha,
        )
    }

    fn vm(id: u32, cpu: f64, mem: f64, s: u32, e: u32) -> Vm {
        Vm::new(id, Resources::new(cpu, mem), Interval::new(s, e))
    }

    #[test]
    fn empty_server_costs_nothing() {
        let ledger = ServerLedger::new(spec(50.0));
        assert_eq!(ledger.cost(), 0.0);
        assert_eq!(segment_cost(&spec(50.0), &SegmentSet::new()), 0.0);
        assert_eq!(transition_count(&spec(50.0), &SegmentSet::new()), 0);
    }

    #[test]
    fn single_vm_cost_breakdown() {
        // P1 = (300-100)/10 = 20 W/CU; VM: 5 CU × 10 units → run 1000.
        // Busy: 10 × 100 = 1000. Initial switch-on: 50.
        let mut ledger = ServerLedger::new(spec(50.0));
        let v = vm(0, 5.0, 5.0, 1, 10);
        ledger.host(&v);
        assert!((ledger.cost() - (1000.0 + 1000.0 + 50.0)).abs() < 1e-9);
        assert_eq!(ledger.hosted_count(), 1);
    }

    #[test]
    fn interior_gap_picks_cheaper_of_idle_and_transition() {
        // α = 250, P_idle = 100: gap of 2 → idle (200); gap of 3 → off (250).
        let s = spec(250.0);
        let mut short_gap = ServerLedger::new(s);
        short_gap.host(&vm(0, 1.0, 1.0, 1, 2));
        short_gap.host(&vm(1, 1.0, 1.0, 5, 6));
        // run: 20×1×2 ×2 vms = 80; busy 4×100; gap 2×100; initial 250.
        assert!((short_gap.cost() - (80.0 + 400.0 + 200.0 + 250.0)).abs() < 1e-9);

        let mut long_gap = ServerLedger::new(s);
        long_gap.host(&vm(0, 1.0, 1.0, 1, 2));
        long_gap.host(&vm(1, 1.0, 1.0, 6, 7));
        // gap of 3 → α = 250 < 300.
        assert!((long_gap.cost() - (80.0 + 400.0 + 250.0 + 250.0)).abs() < 1e-9);
        assert_eq!(transition_count(&s, long_gap.segments()), 2);
        assert_eq!(transition_count(&s, short_gap.segments()), 1);
    }

    #[test]
    fn leading_and_trailing_idle_time_is_free() {
        let mut a = ServerLedger::new(spec(50.0));
        a.host(&vm(0, 1.0, 1.0, 1, 5));
        let mut b = ServerLedger::new(spec(50.0));
        b.host(&vm(0, 1.0, 1.0, 100, 104));
        assert!((a.cost() - b.cost()).abs() < 1e-9);
    }

    #[test]
    fn cost_with_matches_host_then_cost() {
        let mut ledger = ServerLedger::new(spec(120.0));
        let vms = [
            vm(0, 2.0, 3.0, 1, 8),
            vm(1, 1.0, 1.0, 4, 12),
            vm(2, 3.0, 2.0, 20, 25),
            vm(3, 0.5, 0.5, 13, 19),
        ];
        for v in &vms {
            let predicted = ledger.cost_with(v);
            assert!(ledger.fits(v));
            ledger.host(v);
            assert!(
                (ledger.cost() - predicted).abs() < 1e-9,
                "incremental evaluation diverged at {v}"
            );
        }
    }

    #[test]
    fn ledger_agrees_with_full_cost_reference() {
        let s = spec(90.0);
        let vms = vec![
            vm(0, 2.0, 3.0, 1, 8),
            vm(1, 1.0, 1.0, 30, 31),
            vm(2, 3.0, 2.0, 10, 25),
        ];
        let mut ledger = ServerLedger::new(s);
        for v in &vms {
            ledger.host(v);
        }
        assert!((ledger.cost() - full_cost(&s, &vms)).abs() < 1e-9);
    }

    #[test]
    fn incremental_cost_is_nonnegative() {
        let mut ledger = ServerLedger::new(spec(10.0));
        ledger.host(&vm(0, 1.0, 1.0, 5, 10));
        for v in [
            vm(1, 0.0, 1.0, 5, 10), // zero-CPU VM inside existing segment
            vm(2, 1.0, 1.0, 1, 3),
            vm(3, 1.0, 1.0, 50, 60),
        ] {
            assert!(ledger.incremental_cost(&v) >= -1e-12, "{v}");
        }
    }

    #[test]
    fn zero_cpu_vm_inside_busy_segment_is_free() {
        let mut ledger = ServerLedger::new(spec(10.0));
        ledger.host(&vm(0, 1.0, 1.0, 5, 10));
        let free_rider = vm(1, 0.0, 1.0, 6, 9);
        assert!(ledger.incremental_cost(&free_rider).abs() < 1e-12);
    }

    #[test]
    fn delta_scoring_matches_reference_oracle() {
        let mut ledger = ServerLedger::new(spec(120.0));
        for v in [
            vm(0, 1.0, 1.0, 10, 20),
            vm(1, 1.0, 1.0, 30, 35),
            vm(2, 1.0, 1.0, 50, 80),
        ] {
            ledger.host(&v);
        }
        for probe in [
            vm(3, 1.0, 1.0, 1, 5),    // before the span
            vm(4, 1.0, 1.0, 21, 29),  // bridges the first gap exactly
            vm(5, 1.0, 1.0, 24, 26),  // splits the first gap
            vm(6, 1.0, 1.0, 15, 60),  // absorbs two segments
            vm(7, 1.0, 1.0, 90, 95),  // after the span
            vm(8, 1.0, 1.0, 12, 18),  // contained
        ] {
            let fast = ledger.incremental_cost(&probe);
            let slow = ledger.reference_incremental_cost(&probe);
            assert!(
                (fast - slow).abs() < 1e-9,
                "delta {fast} vs oracle {slow} for {probe}"
            );
        }
        // First-segment switch-on charge.
        let empty = ServerLedger::new(spec(120.0));
        let probe = vm(9, 1.0, 1.0, 5, 10);
        assert!(
            (empty.incremental_cost(&probe) - empty.reference_incremental_cost(&probe)).abs()
                < 1e-9
        );
    }

    #[test]
    fn unhost_realizes_predicted_decremental_cost() {
        let mut ledger = ServerLedger::new(spec(120.0));
        let vms = [
            vm(0, 2.0, 3.0, 1, 8),
            vm(1, 1.0, 1.0, 4, 12),
            vm(2, 3.0, 2.0, 20, 25),
            vm(3, 0.5, 0.5, 13, 19),
        ];
        for v in &vms {
            ledger.host(v);
        }
        // Remove in an order that exercises overlap, bridging and the
        // last-segment refund.
        for v in [&vms[1], &vms[3], &vms[0], &vms[2]] {
            let predicted = ledger.decremental_cost(v);
            let oracle = ledger.reference_decremental_cost(v);
            assert!(
                (predicted - oracle).abs() < 1e-9,
                "decremental {predicted} vs oracle {oracle} for {v}"
            );
            let before = ledger.cost();
            let realized = ledger.unhost(v);
            assert_eq!(realized, predicted, "unhost must realize the prediction");
            assert!(
                (ledger.cost() - (before - predicted)).abs() < 1e-9,
                "cost after unhosting {v}"
            );
        }
        assert_eq!(ledger.hosted_count(), 0);
        assert_eq!(ledger.cost(), 0.0);
        assert!(ledger.segments().is_empty());
    }

    #[test]
    fn decremental_negates_incremental() {
        let mut ledger = ServerLedger::new(spec(120.0));
        ledger.host(&vm(0, 1.0, 1.0, 10, 20));
        ledger.host(&vm(1, 1.0, 1.0, 40, 55));
        for probe in [
            vm(2, 1.0, 1.0, 1, 5),   // before the span
            vm(3, 1.0, 1.0, 25, 30), // splits the gap
            vm(4, 1.0, 1.0, 15, 45), // bridges both segments
            vm(5, 1.0, 1.0, 12, 18), // fully shared busy time
            vm(6, 1.0, 1.0, 60, 99), // after the span
        ] {
            let up = ledger.incremental_cost(&probe);
            ledger.host(&probe);
            let down = ledger.decremental_cost(&probe);
            assert!(
                (up - down).abs() < 1e-9,
                "incremental {up} vs decremental {down} for {probe}"
            );
            ledger.unhost(&probe);
        }
        // Last-segment refund mirrors the first-segment charge.
        let mut solo = ServerLedger::new(spec(120.0));
        let only = vm(7, 1.0, 1.0, 5, 9);
        let up = solo.incremental_cost(&only);
        solo.host(&only);
        assert!((solo.decremental_cost(&only) - up).abs() < 1e-9);
        assert!((solo.unhost(&only) - up).abs() < 1e-9);
    }

    #[test]
    fn host_unhost_round_trip_restores_state() {
        let mut ledger = ServerLedger::new(spec(90.0));
        ledger.host(&vm(0, 2.0, 3.0, 1, 8));
        ledger.host(&vm(1, 1.0, 1.0, 30, 31));
        let cost_before = ledger.cost();
        let segments_before = ledger.segments().clone();
        let checkpoint = ledger.checkpoint();
        for probe in [vm(2, 1.0, 1.0, 5, 40), vm(3, 3.0, 2.0, 10, 25)] {
            ledger.host(&probe);
            ledger.unhost(&probe);
            ledger.restore_costs(checkpoint);
        }
        assert_eq!(ledger.cost(), cost_before);
        assert_eq!(ledger.segments(), &segments_before);
        assert_eq!(ledger.hosted_count(), 2);
    }

    #[test]
    fn checkpoint_restores_after_mid_sequence_eviction() {
        // The chaos engine's eviction mechanic: host a VM, crash-evict
        // it at t (unhost the whole piece, re-host the elapsed prefix),
        // then undo the eviction and restore the checkpoint — cost()
        // and the full Eq. 7 decomposition must come back bit-exactly.
        let mut ledger = ServerLedger::new(spec(90.0));
        ledger.host(&vm(0, 2.0, 3.0, 1, 8));
        let victim = vm(1, 1.0, 1.0, 4, 20);
        ledger.host(&victim);
        let cost_before = ledger.cost().to_bits();
        let breakdown_before = ledger.energy_breakdown();
        let checkpoint = ledger.checkpoint();

        // Crash at t = 10: truncate to the prefix [4, 9].
        let crash = 10;
        let prefix = Interval::new(victim.start(), crash - 1);
        ledger.unhost_piece(victim.demand(), victim.interval());
        ledger.host_piece(victim.demand(), prefix);
        assert_ne!(ledger.cost().to_bits(), cost_before, "eviction changed cost");
        assert_eq!(
            ledger.cost().to_bits(),
            ledger.energy_breakdown().total().to_bits(),
            "conservation holds mid-eviction"
        );

        // Recovery path undoes the eviction (tail re-placed here).
        ledger.unhost_piece(victim.demand(), prefix);
        ledger.host_piece(victim.demand(), victim.interval());
        ledger.restore_costs(checkpoint);
        assert_eq!(ledger.cost().to_bits(), cost_before, "cost restored bit-exactly");
        let after = ledger.energy_breakdown();
        assert_eq!(after.run.to_bits(), breakdown_before.run.to_bits());
        assert_eq!(after.idle.to_bits(), breakdown_before.idle.to_bits());
        assert_eq!(
            after.transition.to_bits(),
            breakdown_before.transition.to_bits()
        );
        assert_eq!(ledger.hosted_count(), 2);
    }

    #[test]
    fn try_host_rejects_adversarial_demands() {
        let mut ledger = ServerLedger::new(spec(50.0));
        ledger.host(&vm(0, 1.0, 1.0, 1, 4));
        let cost_before = ledger.cost().to_bits();
        // The fields are public, so hostile code (or a bug upstream)
        // can bypass the `Resources::new` validation — the checked host
        // path must still catch it.
        for demand in [
            Resources { cpu: f64::NAN, mem: 1.0 },
            Resources { cpu: 1.0, mem: f64::NAN },
            Resources { cpu: f64::INFINITY, mem: 1.0 },
            Resources { cpu: -1.0, mem: 1.0 },
            Resources { cpu: 1.0, mem: -1.0 },
        ] {
            let err = ledger
                .try_host_piece(demand, Interval::new(10, 12))
                .unwrap_err();
            assert!(
                matches!(err, crate::Error::EnergyOverflow { .. }),
                "{demand:?}: {err:?}"
            );
        }
        assert_eq!(ledger.cost().to_bits(), cost_before, "ledger unchanged");
        assert_eq!(ledger.hosted_count(), 1);
        ledger
            .try_host_piece(Resources::new(1.0, 1.0), Interval::new(10, 12))
            .expect("well-formed piece is accepted");
        assert_eq!(ledger.hosted_count(), 2);
    }

    #[test]
    fn fits_replacing_swap_feasibility() {
        let mut ledger = ServerLedger::new(spec(10.0));
        let resident = vm(0, 6.0, 6.0, 1, 10);
        ledger.host(&resident);
        ledger.host(&vm(1, 2.0, 2.0, 5, 6));
        // 7 CPU only fits if the 6-CPU resident leaves first — but the
        // 2-CPU VM still blocks t ∈ [5,6].
        let wide = vm(2, 7.0, 1.0, 1, 10);
        assert!(!ledger.fits(&wide));
        assert!(ledger.fits_replacing(&wide, &resident));
        let wider = vm(3, 9.0, 1.0, 1, 10);
        assert!(!ledger.fits_replacing(&wider, &resident));
        // Outside the freed interval the full usage applies.
        let tail = vm(4, 7.0, 1.0, 8, 12);
        assert!(ledger.fits_replacing(&tail, &resident));
        let past = vm(5, 7.0, 1.0, 11, 12);
        assert!(ledger.fits_replacing(&past, &resident));
    }

    #[test]
    fn piece_level_api_matches_vm_level() {
        let mut a = ServerLedger::new(spec(70.0));
        let mut b = ServerLedger::new(spec(70.0));
        let v = vm(0, 2.0, 1.0, 3, 14);
        assert_eq!(
            a.incremental_piece_cost(v.demand(), v.interval()),
            a.incremental_cost(&v)
        );
        a.host(&v);
        b.host_piece(v.demand(), v.interval());
        assert_eq!(a.cost(), b.cost());
        assert_eq!(
            a.decremental_piece_cost(v.demand(), v.interval()),
            a.decremental_cost(&v)
        );
        assert!(b.fits_piece(Resources::new(8.0, 19.0), Interval::new(1, 20)));
        assert!(!b.fits_piece(Resources::new(8.1, 1.0), Interval::new(10, 11)));
        assert_eq!(a.unhost(&v), b.unhost_piece(v.demand(), v.interval()));
        assert_eq!(a.cost(), 0.0);
    }

    #[test]
    fn fits_rejects_capacity_violation() {
        let mut ledger = ServerLedger::new(spec(10.0));
        ledger.host(&vm(0, 6.0, 6.0, 1, 10));
        assert!(!ledger.fits(&vm(1, 5.0, 1.0, 5, 6)));
        assert!(ledger.fits(&vm(1, 4.0, 1.0, 5, 6)));
        assert!(ledger.fits(&vm(1, 5.0, 1.0, 11, 12)));
    }

    #[test]
    fn breakdown_identity_is_bit_exact() {
        // α = 250, P_idle = 100: gap of 2 idles, gap of 3 sleeps.
        let mut ledger = ServerLedger::new(spec(250.0));
        ledger.host(&vm(0, 1.0, 1.0, 1, 2));
        ledger.host(&vm(1, 1.0, 1.0, 5, 6)); // kept-on gap [3,4]
        ledger.host(&vm(2, 1.0, 1.0, 10, 11)); // off gap [7,9]
        let b = ledger.energy_breakdown();
        assert_eq!(b.run + b.idle + b.transition, ledger.cost());
        assert_eq!(b.total(), ledger.cost());
        // run: 3 VMs × 20 W/CU × 1 CU × 2 units; idle: (6 busy + 2 kept)
        // × 100; transition: 2 × 250.
        assert_eq!(b.run, 120.0);
        assert_eq!(b.idle, 800.0);
        assert_eq!(b.transition, 500.0);
        assert_eq!(ledger.transition_count(), 2);
    }

    #[test]
    fn ledger_transition_count_matches_free_function() {
        let s = spec(250.0);
        let mut ledger = ServerLedger::new(s);
        assert_eq!(ledger.transition_count(), 0);
        let vms = [
            vm(0, 1.0, 1.0, 1, 2),
            vm(1, 1.0, 1.0, 5, 6),
            vm(2, 1.0, 1.0, 10, 11),
            vm(3, 1.0, 1.0, 3, 4), // closes the kept-on gap
        ];
        for v in &vms {
            ledger.host(v);
            assert_eq!(
                ledger.transition_count(),
                transition_count(&s, ledger.segments()),
                "after hosting {v}"
            );
        }
        for v in &vms {
            ledger.unhost(v);
            assert_eq!(
                ledger.transition_count(),
                transition_count(&s, ledger.segments()),
                "after unhosting {v}"
            );
        }
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let ledger = ServerLedger::new(spec(50.0));
        let b = ledger.energy_breakdown();
        assert_eq!((b.run, b.idle, b.transition), (0.0, 0.0, 0.0));
    }

    #[test]
    fn spare_at_reports_remaining() {
        let mut ledger = ServerLedger::new(spec(10.0));
        ledger.host(&vm(0, 6.0, 6.0, 1, 10));
        assert_eq!(ledger.spare_at(5), Resources::new(4.0, 14.0));
        assert_eq!(ledger.spare_at(11), Resources::new(10.0, 20.0));
        assert_eq!(ledger.peak_over(Interval::new(0, 20)), Resources::new(6.0, 6.0));
    }
}
