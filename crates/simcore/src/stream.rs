//! The canonical arrival/departure event stream of an instance.
//!
//! Offline allocators consume a problem as a *batch* sorted by start
//! time ([`AllocationProblem::vms_by_start_time`]). The online serving
//! path consumes the same instance as a *stream* of timed events: every
//! VM contributes one [`VmEvent::Arrive`] at its start and one
//! [`VmEvent::Depart`] at the first time unit after its closed interval
//! ends. [`event_order`] defines the one canonical interleaving both
//! the online engine and its differential tests replay, so "the same
//! trace" means the same event sequence no matter which source (text,
//! ESVT, stdin) produced it.
//!
//! Ordering rules, in priority order:
//!
//! 1. ascending event time — arrivals at `start`, departures at
//!    `end + 1` (intervals are closed, so a VM still occupies its
//!    server *at* `end`; capacity frees one unit later);
//! 2. at equal times, **departures before arrivals**: a VM departing at
//!    `t` cannot overlap one arriving at `t`, so freeing first is safe
//!    and maximises packing;
//! 3. within a kind, ascending [`VmId`] — the same lowest-id
//!    determinism every argmin in the workspace uses.
//!
//! [`AllocationProblem::vms_by_start_time`]: crate::AllocationProblem::vms_by_start_time

use crate::{TimeUnit, Vm, VmId};

/// One timed event of the arrival/departure stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VmEvent {
    /// The VM requests placement; an online decision is due *now*.
    Arrive(Vm),
    /// The VM's closed interval has ended: its capacity frees at `at`
    /// (`= end + 1`).
    Depart {
        /// The departing VM.
        vm: VmId,
        /// First time unit the freed capacity is usable.
        at: TimeUnit,
    },
}

impl VmEvent {
    /// The event's time: arrival start, or the departure's free instant.
    pub fn at(&self) -> TimeUnit {
        match self {
            VmEvent::Arrive(vm) => vm.start(),
            VmEvent::Depart { at, .. } => *at,
        }
    }

    /// The VM the event concerns.
    pub fn vm(&self) -> VmId {
        match self {
            VmEvent::Arrive(vm) => vm.id(),
            VmEvent::Depart { vm, .. } => *vm,
        }
    }

    /// Whether this is a departure (sorts before arrivals at its time).
    pub fn is_departure(&self) -> bool {
        matches!(self, VmEvent::Depart { .. })
    }
}

/// The first time unit after `vm`'s closed interval: when its capacity
/// frees. Never overflows: interval ends are capped at
/// [`MAX_TIME`](crate::MAX_TIME)` = u32::MAX − 1`.
pub fn departure_time(vm: &Vm) -> TimeUnit {
    vm.end() + 1
}

/// The canonical event interleaving of `vms` (see the module docs for
/// the ordering rules). Every VM contributes exactly one arrival and
/// one departure, so the result has `2 × vms.len()` events.
pub fn event_order(vms: &[Vm]) -> Vec<VmEvent> {
    let mut events: Vec<VmEvent> = Vec::with_capacity(vms.len() * 2);
    for vm in vms {
        events.push(VmEvent::Arrive(*vm));
        events.push(VmEvent::Depart {
            vm: vm.id(),
            at: departure_time(vm),
        });
    }
    // Departures (false < true is the wrong way around: departures
    // must come first, so sort on `!is_departure`).
    events.sort_by_key(|e| (e.at(), !e.is_departure(), e.vm()));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, Resources};

    fn vm(id: u32, start: u32, end: u32) -> Vm {
        Vm::new(id, Resources::new(1.0, 1.0), Interval::new(start, end))
    }

    #[test]
    fn every_vm_contributes_arrival_and_departure() {
        let vms = vec![vm(0, 1, 5), vm(1, 3, 3)];
        let events = event_order(&vms);
        assert_eq!(events.len(), 4);
        let arrivals = events.iter().filter(|e| !e.is_departure()).count();
        assert_eq!(arrivals, 2);
    }

    #[test]
    fn order_is_time_then_departures_first_then_id() {
        // vm0 [1,4] departs at 5; vm1 arrives at 5 — departure first.
        // vm2 and vm3 both arrive at 5 — ascending id.
        let vms = vec![vm(0, 1, 4), vm(3, 5, 9), vm(2, 5, 7), vm(1, 5, 6)];
        let events = event_order(&vms);
        assert_eq!(events[0], VmEvent::Arrive(vms[0]));
        assert_eq!(events[1], VmEvent::Depart { vm: VmId(0), at: 5 });
        assert_eq!(events[2].vm(), VmId(1));
        assert_eq!(events[3].vm(), VmId(2));
        assert_eq!(events[4].vm(), VmId(3));
        assert!(events[2..5].iter().all(|e| !e.is_departure()));
    }

    #[test]
    fn departure_time_is_one_past_the_closed_interval() {
        let v = vm(7, 2, 9);
        assert_eq!(departure_time(&v), 10);
        assert_eq!(VmEvent::Depart { vm: v.id(), at: 10 }.at(), 10);
        // The cap on interval ends keeps `end + 1` from overflowing.
        let late = vm(8, crate::MAX_TIME, crate::MAX_TIME);
        assert_eq!(departure_time(&late), u32::MAX);
    }

    #[test]
    fn arrivals_preserve_the_offline_scan_order() {
        let vms = vec![vm(2, 4, 5), vm(0, 2, 9), vm(1, 2, 3)];
        let order: Vec<VmId> = event_order(&vms)
            .into_iter()
            .filter(|e| !e.is_departure())
            .map(|e| e.vm())
            .collect();
        assert_eq!(order, vec![VmId(0), VmId(1), VmId(2)]);
    }
}
