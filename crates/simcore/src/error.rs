//! Error types for simulation-model operations.

use crate::{ServerId, VmId};
use std::fmt;

/// Result alias for simcore operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building problems or manipulating assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A VM id does not exist in the problem.
    UnknownVm(VmId),
    /// A server id does not exist in the problem.
    UnknownServer(ServerId),
    /// A VM was placed twice.
    AlreadyPlaced(VmId),
    /// Placing the VM would exceed the server's capacity in some time
    /// unit.
    CapacityExceeded {
        /// The VM being placed.
        vm: VmId,
        /// The server that cannot host it.
        server: ServerId,
    },
    /// A VM demand exceeds every server capacity, so no feasible
    /// allocation exists.
    InfeasibleVm(VmId),
    /// The audit found unplaced VMs (constraint (11) violated).
    Unplaced(VmId),
    /// Ids in the problem are not dense `0..n` indices.
    NonDenseIds,
    /// The problem contains no servers.
    NoServers,
    /// An energy or time accumulator would leave the representable
    /// range (non-finite demand/cost, or busy time past `u64::MAX`).
    EnergyOverflow {
        /// The server whose ledger refused the update.
        server: ServerId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownVm(id) => write!(f, "unknown vm id {id}"),
            Error::UnknownServer(id) => write!(f, "unknown server id {id}"),
            Error::AlreadyPlaced(id) => write!(f, "{id} is already placed"),
            Error::CapacityExceeded { vm, server } => {
                write!(f, "placing {vm} on {server} exceeds capacity")
            }
            Error::InfeasibleVm(id) => {
                write!(f, "{id} does not fit on any server even when empty")
            }
            Error::Unplaced(id) => write!(f, "{id} is not placed on any server"),
            Error::NonDenseIds => write!(f, "vm/server ids must be dense 0..n indices"),
            Error::NoServers => write!(f, "problem contains no servers"),
            Error::EnergyOverflow { server } => {
                write!(f, "energy accounting on {server} would overflow")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_without_period() {
        let samples: Vec<Error> = vec![
            Error::UnknownVm(VmId(3)),
            Error::UnknownServer(ServerId(1)),
            Error::AlreadyPlaced(VmId(2)),
            Error::CapacityExceeded {
                vm: VmId(0),
                server: ServerId(0),
            },
            Error::InfeasibleVm(VmId(9)),
            Error::Unplaced(VmId(4)),
            Error::NonDenseIds,
            Error::NoServers,
            Error::EnergyOverflow {
                server: ServerId(2),
            },
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_: E) {}
        takes_err(Error::NoServers);
    }
}
