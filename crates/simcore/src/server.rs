//! Server specifications: capacity, affine power model, transition cost.

use crate::{Resources, Vm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server, its index into [`AllocationProblem::servers`].
///
/// [`AllocationProblem::servers`]: crate::AllocationProblem::servers
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ServerId {
    fn from(v: u32) -> Self {
        ServerId(v)
    }
}

impl From<ServerId> for u32 {
    fn from(v: ServerId) -> u32 {
        v.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// The affine power model of Eq. (1):
/// `P(u) = P_idle + (P_peak − P_idle) · u`, `0 ≤ u ≤ 1`.
///
/// `u` is the fraction of the server's *CPU* capacity in use. The paper
/// follows Barroso & Hölzle's energy-proportionality model and notes that
/// real data-center servers idle at 40–50 % of peak power.
///
/// # Example
///
/// ```
/// use esvm_simcore::PowerModel;
/// let p = PowerModel::new(180.0, 400.0);
/// assert_eq!(p.power_at(0.0), 180.0);
/// assert_eq!(p.power_at(1.0), 400.0);
/// assert_eq!(p.power_at(0.5), 290.0);
/// assert!((p.idle_fraction() - 0.45).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    p_idle: f64,
    p_peak: f64,
}

impl PowerModel {
    /// Creates a power model from idle and peak power in watts.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p_idle ≤ p_peak` and both are finite.
    pub fn new(p_idle: f64, p_peak: f64) -> Self {
        assert!(
            p_idle.is_finite() && p_peak.is_finite() && 0.0 <= p_idle && p_idle <= p_peak,
            "power model requires 0 <= p_idle <= p_peak, got idle={p_idle} peak={p_peak}"
        );
        Self { p_idle, p_peak }
    }

    /// Power when the server is active but runs no VM, in watts.
    pub fn p_idle(&self) -> f64 {
        self.p_idle
    }

    /// Power under full CPU load, in watts.
    pub fn p_peak(&self) -> f64 {
        self.p_peak
    }

    /// Power at CPU load fraction `u ∈ [0, 1]` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `u` is outside `[0, 1]` beyond
    /// floating-point tolerance.
    pub fn power_at(&self, u: f64) -> f64 {
        debug_assert!(
            (-1e-9..=1.0 + 1e-9).contains(&u),
            "load fraction {u} outside [0, 1]"
        );
        self.p_idle + (self.p_peak - self.p_idle) * u
    }

    /// `P_idle / P_peak`; the paper sets this to 40–50 % for all server
    /// types. Returns 0 for a degenerate all-zero model.
    pub fn idle_fraction(&self) -> f64 {
        if self.p_peak == 0.0 {
            0.0
        } else {
            self.p_idle / self.p_peak
        }
    }

    /// The dynamic power range `P_peak − P_idle` in watts.
    pub fn dynamic_range(&self) -> f64 {
        self.p_peak - self.p_idle
    }
}

/// A server: id, resource capacity, power model and transition cost.
///
/// Servers are **non-homogeneous** (Section I, point 2): every server may
/// have its own capacity, power parameters and transition cost `α`.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, PowerModel, Resources, ServerSpec, Vm};
/// let s = ServerSpec::new(0, Resources::new(60.0, 68.0), PowerModel::new(180.0, 400.0), 400.0);
/// // P¹ = (400 − 180) / 60 W per compute unit (Eq. 2).
/// assert!((s.power_per_cpu_unit() - 220.0 / 60.0).abs() < 1e-12);
/// // W_ij = P¹ · cpu · duration (Eq. 3).
/// let vm = Vm::new(0, Resources::new(6.0, 7.0), Interval::new(1, 10));
/// assert!((s.run_cost(&vm) - (220.0 / 60.0) * 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    id: ServerId,
    capacity: Resources,
    power: PowerModel,
    transition_cost: f64,
}

impl ServerSpec {
    /// Creates a server specification.
    ///
    /// `transition_cost` is `α_i`, the energy charged each time the server
    /// switches from power-saving to active state, in watt·time-units
    /// (the paper sets `α_i = P_peak_i × transition time`, Section IV-B3).
    ///
    /// # Panics
    ///
    /// Panics if the capacity has a zero CPU component (the power-per-CPU
    /// normalisation of Eq. 2 would be undefined) or if the transition
    /// cost is negative or not finite.
    pub fn new(
        id: impl Into<ServerId>,
        capacity: Resources,
        power: PowerModel,
        transition_cost: f64,
    ) -> Self {
        assert!(capacity.cpu > 0.0, "server CPU capacity must be positive");
        assert!(
            transition_cost.is_finite() && transition_cost >= 0.0,
            "transition cost must be finite and non-negative, got {transition_cost}"
        );
        Self {
            id: id.into(),
            capacity,
            power,
            transition_cost,
        }
    }

    /// The server identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The (CPU, memory) capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// The affine power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The transition cost `α_i` in watt·time-units.
    pub fn transition_cost(&self) -> f64 {
        self.transition_cost
    }

    /// `P¹_i = (P_peak − P_idle) / C_cpu` (Eq. 2): power drawn by one
    /// compute unit of demand, in watts per compute unit.
    pub fn power_per_cpu_unit(&self) -> f64 {
        self.power.dynamic_range() / self.capacity.cpu
    }

    /// The run cost `W_ij = P¹_i · Σ_t R^CPU_jt` (Eq. 3) of hosting `vm`
    /// for its whole duration, in watt·time-units.
    pub fn run_cost(&self, vm: &Vm) -> f64 {
        self.power_per_cpu_unit() * vm.cpu_time()
    }

    /// Whether `demand` fits in this server when `used` is already
    /// committed.
    pub fn can_host(&self, used: Resources, demand: Resources) -> bool {
        (used + demand).fits_within(self.capacity)
    }

    /// Energy of keeping the server active but idle for `len` time units.
    pub fn idle_cost(&self, len: u64) -> f64 {
        self.power.p_idle() * len as f64
    }

    /// The cheaper of idling through a gap of `len` units or switching off
    /// and back on (Eq. 16): `min{P_idle · len, α}`.
    pub fn gap_cost(&self, len: u64) -> f64 {
        self.idle_cost(len).min(self.transition_cost)
    }

    /// Whether the switch-off policy powers the server down during an
    /// interior idle gap of `len` time units (transition cheaper than
    /// idling).
    pub fn switches_off_for_gap(&self, len: u64) -> bool {
        self.transition_cost < self.idle_cost(len)
    }
}

impl fmt::Display for ServerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cap {} P_idle {:.0} W P_peak {:.0} W α {:.0}",
            self.id,
            self.capacity,
            self.power.p_idle(),
            self.power.p_peak(),
            self.transition_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn spec() -> ServerSpec {
        ServerSpec::new(
            1,
            Resources::new(16.0, 32.0),
            PowerModel::new(140.0, 300.0),
            300.0,
        )
    }

    #[test]
    fn power_model_interpolates() {
        let p = PowerModel::new(100.0, 200.0);
        assert_eq!(p.power_at(0.25), 125.0);
        assert_eq!(p.dynamic_range(), 100.0);
        assert_eq!(p.idle_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "p_idle <= p_peak")]
    fn power_model_rejects_idle_above_peak() {
        let _ = PowerModel::new(300.0, 200.0);
    }

    #[test]
    fn p1_and_run_cost_follow_eq2_eq3() {
        let s = spec();
        assert!((s.power_per_cpu_unit() - 10.0).abs() < 1e-12);
        let vm = Vm::new(0, Resources::new(4.0, 4.0), Interval::new(1, 5));
        // W = 10 W/CU × 4 CU × 5 units = 200.
        assert!((s.run_cost(&vm) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn can_host_checks_remaining_capacity() {
        let s = spec();
        assert!(s.can_host(Resources::new(12.0, 30.0), Resources::new(4.0, 2.0)));
        assert!(!s.can_host(Resources::new(12.0, 30.0), Resources::new(4.1, 2.0)));
        assert!(!s.can_host(Resources::new(12.0, 30.0), Resources::new(4.0, 2.1)));
    }

    #[test]
    fn gap_cost_picks_cheaper_option() {
        let s = spec(); // P_idle 140, α 300.
        assert_eq!(s.gap_cost(1), 140.0); // idle 1 unit: 140 < 300.
        assert_eq!(s.gap_cost(2), 280.0); // idle 2 units: 280 < 300.
        assert_eq!(s.gap_cost(3), 300.0); // switch off: 300 < 420.
        assert!(!s.switches_off_for_gap(2));
        assert!(s.switches_off_for_gap(3));
    }

    #[test]
    #[should_panic(expected = "CPU capacity must be positive")]
    fn zero_cpu_capacity_rejected() {
        let _ = ServerSpec::new(
            0,
            Resources::new(0.0, 8.0),
            PowerModel::new(1.0, 2.0),
            1.0,
        );
    }

    #[test]
    fn id_conversions_and_display() {
        let id: ServerId = 4u32.into();
        assert_eq!(id.index(), 4);
        assert_eq!(u32::from(id), 4);
        assert_eq!(id.to_string(), "srv4");
        assert!(spec().to_string().contains("srv1"));
    }
}
