//! Busy/idle segment algebra.
//!
//! A server running a set of VMs "experiences a sequence of time-segments
//! alternating in running VMs (called busy-segment) and running no VM
//! (called idle-segment)" (Section III, Fig. 1). [`SegmentSet`] maintains
//! the *busy* segments as a canonical set of disjoint, non-adjacent closed
//! intervals; the interior gaps between consecutive busy segments are the
//! idle segments of the paper. Time before the first and after the last
//! busy segment is not an idle segment: the server is simply still in the
//! power-saving state (`y_{i,0} = y_{i,T+1} = 0`).

use crate::{Interval, TimeUnit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A segment of server time: either busy (≥ 1 VM) or idle (an interior
/// gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// The server hosts at least one VM throughout the interval.
    Busy(Interval),
    /// Interior gap between two busy segments: the server hosts no VM but
    /// is "booked" between activity periods.
    Idle(Interval),
}

impl Segment {
    /// The underlying interval.
    pub fn interval(&self) -> Interval {
        match *self {
            Segment::Busy(i) | Segment::Idle(i) => i,
        }
    }

    /// Whether this is a busy segment.
    pub fn is_busy(&self) -> bool {
        matches!(self, Segment::Busy(_))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Busy(i) => write!(f, "busy{i}"),
            Segment::Idle(i) => write!(f, "idle{i}"),
        }
    }
}

/// A canonical set of disjoint, non-adjacent closed intervals — the busy
/// segments of one server.
///
/// Inserting an interval merges it with every interval it overlaps or
/// touches, so the set always stores the *minimal* number of segments.
/// All operations are `O(k log n)` where `k` is the number of merged
/// segments.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, SegmentSet};
/// let mut set = SegmentSet::new();
/// set.insert(Interval::new(1, 5));
/// set.insert(Interval::new(10, 12));
/// set.insert(Interval::new(6, 7)); // adjacent to [1,5] → merges
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.busy_time(), 7 + 3);
/// let gaps: Vec<_> = set.gaps().collect();
/// assert_eq!(gaps, vec![Interval::new(8, 9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSet {
    /// start → end of each merged segment.
    segments: BTreeMap<TimeUnit, TimeUnit>,
}

impl SegmentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of merged busy segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the set holds no segment.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total number of busy time units across all segments.
    pub fn busy_time(&self) -> u64 {
        self.segments
            .iter()
            .map(|(&s, &e)| Interval::new(s, e).len())
            .sum()
    }

    /// The hull `[first_start, last_end]` of all segments, or `None` when
    /// empty.
    pub fn span(&self) -> Option<Interval> {
        let (&first, _) = self.segments.iter().next()?;
        let (_, &last) = self.segments.iter().next_back()?;
        Some(Interval::new(first, last))
    }

    /// Whether `t` falls inside a busy segment.
    pub fn contains(&self, t: TimeUnit) -> bool {
        self.segments
            .range(..=t)
            .next_back()
            .is_some_and(|(_, &end)| t <= end)
    }

    /// Inserts an interval, merging with all overlapping or adjacent
    /// segments. Returns the merged segment that now covers `interval`.
    pub fn insert(&mut self, interval: Interval) -> Interval {
        let mut start = interval.start();
        let mut end = interval.end();

        // A segment beginning at or before `start` may reach into the new
        // interval (or touch it).
        if let Some((&s, &e)) = self.segments.range(..=start).next_back() {
            if u64::from(e) + 1 >= u64::from(start) {
                start = s;
                end = end.max(e);
                self.segments.remove(&s);
            }
        }
        // Absorb every later segment that begins at or before `end + 1`.
        loop {
            let next = self
                .segments
                .range(start..)
                .next()
                .map(|(&s, &e)| (s, e))
                .filter(|&(s, _)| u64::from(s) <= u64::from(end) + 1);
            match next {
                Some((s, e)) => {
                    end = end.max(e);
                    self.segments.remove(&s);
                }
                None => break,
            }
        }
        self.segments.insert(start, end);
        Interval::new(start, end)
    }

    /// Iterates over the busy segments in time order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.segments.iter().map(|(&s, &e)| Interval::new(s, e))
    }

    /// Iterates over the interior idle gaps between consecutive busy
    /// segments, in time order. Leading/trailing power-saving time is not
    /// reported (see module docs).
    pub fn gaps(&self) -> impl Iterator<Item = Interval> + '_ {
        self.iter().zip(self.iter().skip(1)).map(|(a, b)| {
            debug_assert!(u64::from(a.end()) + 1 < u64::from(b.start()));
            Interval::new(a.end() + 1, b.start() - 1)
        })
    }

    /// Iterates over busy and idle segments interleaved in time order, as
    /// in Fig. 1 of the paper.
    pub fn timeline(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.len().saturating_mul(2));
        let mut prev_end: Option<TimeUnit> = None;
        for seg in self.iter() {
            if let Some(pe) = prev_end {
                out.push(Segment::Idle(Interval::new(pe + 1, seg.start() - 1)));
            }
            out.push(Segment::Busy(seg));
            prev_end = Some(seg.end());
        }
        out
    }

    /// A copy of the set with `interval` inserted. Used by allocation
    /// heuristics to evaluate hypothetical placements without mutating the
    /// live state.
    pub fn with_inserted(&self, interval: Interval) -> SegmentSet {
        let mut copy = self.clone();
        copy.insert(interval);
        copy
    }
}

impl FromIterator<Interval> for SegmentSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = SegmentSet::new();
        for interval in iter {
            set.insert(interval);
        }
        set
    }
}

impl Extend<Interval> for SegmentSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for interval in iter {
            self.insert(interval);
        }
    }
}

impl fmt::Display for SegmentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, seg) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{seg}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(intervals: &[(u32, u32)]) -> SegmentSet {
        intervals
            .iter()
            .map(|&(s, e)| Interval::new(s, e))
            .collect()
    }

    #[test]
    fn disjoint_insertions_stay_separate() {
        let s = set(&[(1, 3), (7, 9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.busy_time(), 6);
        assert_eq!(s.span(), Some(Interval::new(1, 9)));
    }

    #[test]
    fn overlapping_insertions_merge() {
        let s = set(&[(1, 5), (3, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(Interval::new(1, 8)));
    }

    #[test]
    fn adjacent_insertions_merge() {
        let s = set(&[(1, 5), (6, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 8);
    }

    #[test]
    fn insertion_bridges_multiple_segments() {
        let mut s = set(&[(1, 2), (5, 6), (9, 10)]);
        let merged = s.insert(Interval::new(3, 8));
        assert_eq!(merged, Interval::new(1, 10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insertion_contained_in_existing() {
        let mut s = set(&[(1, 10)]);
        s.insert(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 10);
    }

    #[test]
    fn gaps_are_interior_only() {
        let s = set(&[(3, 5), (9, 10), (20, 25)]);
        let gaps: Vec<_> = s.gaps().collect();
        assert_eq!(gaps, vec![Interval::new(6, 8), Interval::new(11, 19)]);
    }

    #[test]
    fn empty_and_single_segment_have_no_gaps() {
        assert_eq!(SegmentSet::new().gaps().count(), 0);
        assert_eq!(set(&[(1, 9)]).gaps().count(), 0);
        assert_eq!(SegmentSet::new().span(), None);
    }

    #[test]
    fn contains_point_queries() {
        let s = set(&[(2, 4), (8, 8)]);
        assert!(s.contains(2) && s.contains(4) && s.contains(8));
        assert!(!s.contains(1) && !s.contains(5) && !s.contains(9));
    }

    #[test]
    fn timeline_alternates() {
        let s = set(&[(1, 2), (5, 6)]);
        let tl = s.timeline();
        assert_eq!(
            tl,
            vec![
                Segment::Busy(Interval::new(1, 2)),
                Segment::Idle(Interval::new(3, 4)),
                Segment::Busy(Interval::new(5, 6)),
            ]
        );
        assert!(tl[0].is_busy() && !tl[1].is_busy());
        assert_eq!(tl[1].interval(), Interval::new(3, 4));
    }

    #[test]
    fn with_inserted_does_not_mutate() {
        let s = set(&[(1, 2)]);
        let t = s.with_inserted(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn merge_at_time_zero() {
        let mut s = SegmentSet::new();
        s.insert(Interval::new(0, 0));
        s.insert(Interval::new(1, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.span(), Some(Interval::new(0, 2)));
    }

    #[test]
    fn display_lists_segments() {
        let s = set(&[(1, 2), (5, 6)]);
        assert_eq!(s.to_string(), "{[1, 2], [5, 6]}");
    }
}
