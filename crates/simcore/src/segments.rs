//! Busy/idle segment algebra.
//!
//! A server running a set of VMs "experiences a sequence of time-segments
//! alternating in running VMs (called busy-segment) and running no VM
//! (called idle-segment)" (Section III, Fig. 1). [`SegmentSet`] maintains
//! the *busy* segments as a canonical set of disjoint, non-adjacent closed
//! intervals; the interior gaps between consecutive busy segments are the
//! idle segments of the paper. Time before the first and after the last
//! busy segment is not an idle segment: the server is simply still in the
//! power-saving state (`y_{i,0} = y_{i,T+1} = 0`).

use crate::{Interval, TimeUnit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A segment of server time: either busy (≥ 1 VM) or idle (an interior
/// gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// The server hosts at least one VM throughout the interval.
    Busy(Interval),
    /// Interior gap between two busy segments: the server hosts no VM but
    /// is "booked" between activity periods.
    Idle(Interval),
}

impl Segment {
    /// The underlying interval.
    pub fn interval(&self) -> Interval {
        match *self {
            Segment::Busy(i) | Segment::Idle(i) => i,
        }
    }

    /// Whether this is a busy segment.
    pub fn is_busy(&self) -> bool {
        matches!(self, Segment::Busy(_))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Busy(i) => write!(f, "busy{i}"),
            Segment::Idle(i) => write!(f, "idle{i}"),
        }
    }
}

/// How an insertion would change a [`SegmentSet`], without performing it.
///
/// Produced by [`SegmentSet::insertion_delta`]; combined with a server's
/// power parameters this yields the exact change in segment energy cost
/// as pure arithmetic — no clone, no rescan of the resident segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionDelta {
    /// Increase in total busy time (`busy_time` after − before).
    pub busy_added: u64,
    /// Change in the sum of per-gap costs over interior gaps, as priced
    /// by the closure given to [`SegmentSet::insertion_delta`].
    pub gap_cost_delta: f64,
    /// Whether the set was empty, i.e. this insertion creates the first
    /// busy segment (the initial switch-on).
    pub first_segment: bool,
    /// The merged segment the insertion would produce.
    pub merged: Interval,
}

/// Interior gap length between a segment ending at `prev_end` and the
/// next one starting at `next_start` (canonical sets guarantee
/// `next_start ≥ prev_end + 2`).
fn gap_len(prev_end: TimeUnit, next_start: TimeUnit) -> u64 {
    debug_assert!(u64::from(prev_end) + 1 < u64::from(next_start));
    u64::from(next_start) - u64::from(prev_end) - 1
}

/// A canonical set of disjoint, non-adjacent closed intervals — the busy
/// segments of one server.
///
/// Inserting an interval merges it with every interval it overlaps or
/// touches, so the set always stores the *minimal* number of segments.
/// Segments are stored in a flat start-sorted vector: lookups are binary
/// searches and insertion shifts the tail with a `memmove`, which beats a
/// node-based tree for the segment counts allocation produces (usually a
/// handful, rarely more than a few hundred).
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, SegmentSet};
/// let mut set = SegmentSet::new();
/// set.insert(Interval::new(1, 5));
/// set.insert(Interval::new(10, 12));
/// set.insert(Interval::new(6, 7)); // adjacent to [1,5] → merges
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.busy_time(), 7 + 3);
/// let gaps: Vec<_> = set.gaps().collect();
/// assert_eq!(gaps, vec![Interval::new(8, 9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSet {
    /// `(start, end)` of each merged segment, sorted by start.
    segments: Vec<(TimeUnit, TimeUnit)>,
}

impl SegmentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of merged busy segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the set holds no segment.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total number of busy time units across all segments.
    pub fn busy_time(&self) -> u64 {
        self.segments
            .iter()
            .map(|&(s, e)| Interval::new(s, e).len())
            .sum()
    }

    /// The hull `[first_start, last_end]` of all segments, or `None` when
    /// empty.
    pub fn span(&self) -> Option<Interval> {
        let &(first, _) = self.segments.first()?;
        let &(_, last) = self.segments.last()?;
        Some(Interval::new(first, last))
    }

    /// Whether `t` falls inside a busy segment.
    pub fn contains(&self, t: TimeUnit) -> bool {
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        idx > 0 && t <= self.segments[idx - 1].1
    }

    /// Indices `[lo, hi)` of the segments `interval` overlaps or touches,
    /// and the hull they would merge into. Both bounds are binary
    /// searches; `lo == hi` means the interval lands clear of every
    /// existing segment.
    fn merge_range(&self, interval: Interval) -> (usize, usize, Interval) {
        let mut start = interval.start();
        let mut end = interval.end();
        // Ends are strictly increasing, so "ends before my start (with no
        // adjacency)" is a sorted prefix; `lo` is the first segment that
        // could reach or touch `start`.
        let lo = self
            .segments
            .partition_point(|&(_, e)| u64::from(e) + 1 < u64::from(start));
        // Starts are sorted, so "begins at or before end + 1" is also a
        // prefix; everything in [lo, hi) merges.
        let hi = self
            .segments
            .partition_point(|&(s, _)| u64::from(s) <= u64::from(end) + 1);
        if lo < hi {
            start = start.min(self.segments[lo].0);
            end = end.max(self.segments[hi - 1].1);
        }
        (lo, hi, Interval::new(start, end))
    }

    /// Inserts an interval, merging with all overlapping or adjacent
    /// segments. Returns the merged segment that now covers `interval`.
    pub fn insert(&mut self, interval: Interval) -> Interval {
        let (lo, hi, merged) = self.merge_range(interval);
        if lo == hi {
            self.segments.insert(lo, (merged.start(), merged.end()));
        } else {
            self.segments[lo] = (merged.start(), merged.end());
            self.segments.drain(lo + 1..hi);
        }
        merged
    }

    /// How inserting `interval` would change the set, with interior gaps
    /// priced by `gap_cost` (a length → cost map, e.g.
    /// `ServerSpec::gap_cost`). Probes only the merged segments and their
    /// two outside neighbours — `O(log n + merged)`, no allocation — and
    /// does not mutate the set.
    ///
    /// Together with the run cost of the inserted VM this is the exact
    /// incremental energy cost the MIEC heuristic minimises; see
    /// `ServerLedger::incremental_cost`.
    pub fn insertion_delta(
        &self,
        interval: Interval,
        gap_cost: impl Fn(u64) -> f64,
    ) -> InsertionDelta {
        let (lo, hi, merged) = self.merge_range(interval);
        let absorbed: u64 = self.segments[lo..hi]
            .iter()
            .map(|&(s, e)| Interval::new(s, e).len())
            .sum();
        let mut delta = 0.0;
        // Interior gaps between consecutive absorbed segments become busy.
        for w in self.segments[lo..hi].windows(2) {
            delta -= gap_cost(gap_len(w[0].1, w[1].0));
        }
        if lo < hi {
            // The hull may extend past the outermost absorbed segments,
            // shrinking (never closing) the boundary gaps.
            if lo > 0 {
                let left_end = self.segments[lo - 1].1;
                let old = gap_len(left_end, self.segments[lo].0);
                let new = gap_len(left_end, merged.start());
                if new != old {
                    delta += gap_cost(new) - gap_cost(old);
                }
            }
            if hi < self.segments.len() {
                let right_start = self.segments[hi].0;
                let old = gap_len(self.segments[hi - 1].1, right_start);
                let new = gap_len(merged.end(), right_start);
                if new != old {
                    delta += gap_cost(new) - gap_cost(old);
                }
            }
        } else {
            // Nothing merges: the interval splits an existing gap in two,
            // or opens a new boundary gap at the edge of the span.
            let left = lo.checked_sub(1).map(|i| self.segments[i].1);
            let right = self.segments.get(lo).map(|&(s, _)| s);
            match (left, right) {
                (Some(le), Some(rs)) => {
                    delta += gap_cost(gap_len(le, merged.start()))
                        + gap_cost(gap_len(merged.end(), rs))
                        - gap_cost(gap_len(le, rs));
                }
                (Some(le), None) => delta += gap_cost(gap_len(le, merged.start())),
                (None, Some(rs)) => delta += gap_cost(gap_len(merged.end(), rs)),
                (None, None) => {}
            }
        }
        InsertionDelta {
            busy_added: merged.len() - absorbed,
            gap_cost_delta: delta,
            first_segment: self.is_empty(),
            merged,
        }
    }

    /// Iterates over the busy segments in time order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.segments.iter().map(|&(s, e)| Interval::new(s, e))
    }

    /// Iterates over the interior idle gaps between consecutive busy
    /// segments, in time order. Leading/trailing power-saving time is not
    /// reported (see module docs).
    pub fn gaps(&self) -> impl Iterator<Item = Interval> + '_ {
        self.segments
            .windows(2)
            .map(|w| Interval::new(w[0].1 + 1, w[1].0 - 1))
    }

    /// Iterates over busy and idle segments interleaved in time order, as
    /// in Fig. 1 of the paper.
    pub fn timeline(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.len().saturating_mul(2));
        let mut prev_end: Option<TimeUnit> = None;
        for seg in self.iter() {
            if let Some(pe) = prev_end {
                out.push(Segment::Idle(Interval::new(pe + 1, seg.start() - 1)));
            }
            out.push(Segment::Busy(seg));
            prev_end = Some(seg.end());
        }
        out
    }

    /// A copy of the set with `interval` inserted. Retained as the
    /// reference oracle for [`SegmentSet::insertion_delta`]-based scoring
    /// (see the simcore property tests); the allocation hot path no
    /// longer calls it.
    pub fn with_inserted(&self, interval: Interval) -> SegmentSet {
        let mut copy = self.clone();
        copy.insert(interval);
        copy
    }
}

impl FromIterator<Interval> for SegmentSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = SegmentSet::new();
        for interval in iter {
            set.insert(interval);
        }
        set
    }
}

impl Extend<Interval> for SegmentSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for interval in iter {
            self.insert(interval);
        }
    }
}

impl fmt::Display for SegmentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, seg) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{seg}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(intervals: &[(u32, u32)]) -> SegmentSet {
        intervals
            .iter()
            .map(|&(s, e)| Interval::new(s, e))
            .collect()
    }

    #[test]
    fn disjoint_insertions_stay_separate() {
        let s = set(&[(1, 3), (7, 9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.busy_time(), 6);
        assert_eq!(s.span(), Some(Interval::new(1, 9)));
    }

    #[test]
    fn overlapping_insertions_merge() {
        let s = set(&[(1, 5), (3, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(Interval::new(1, 8)));
    }

    #[test]
    fn adjacent_insertions_merge() {
        let s = set(&[(1, 5), (6, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 8);
    }

    #[test]
    fn insertion_bridges_multiple_segments() {
        let mut s = set(&[(1, 2), (5, 6), (9, 10)]);
        let merged = s.insert(Interval::new(3, 8));
        assert_eq!(merged, Interval::new(1, 10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insertion_contained_in_existing() {
        let mut s = set(&[(1, 10)]);
        s.insert(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 10);
    }

    #[test]
    fn gaps_are_interior_only() {
        let s = set(&[(3, 5), (9, 10), (20, 25)]);
        let gaps: Vec<_> = s.gaps().collect();
        assert_eq!(gaps, vec![Interval::new(6, 8), Interval::new(11, 19)]);
    }

    #[test]
    fn empty_and_single_segment_have_no_gaps() {
        assert_eq!(SegmentSet::new().gaps().count(), 0);
        assert_eq!(set(&[(1, 9)]).gaps().count(), 0);
        assert_eq!(SegmentSet::new().span(), None);
    }

    #[test]
    fn contains_point_queries() {
        let s = set(&[(2, 4), (8, 8)]);
        assert!(s.contains(2) && s.contains(4) && s.contains(8));
        assert!(!s.contains(1) && !s.contains(5) && !s.contains(9));
    }

    #[test]
    fn timeline_alternates() {
        let s = set(&[(1, 2), (5, 6)]);
        let tl = s.timeline();
        assert_eq!(
            tl,
            vec![
                Segment::Busy(Interval::new(1, 2)),
                Segment::Idle(Interval::new(3, 4)),
                Segment::Busy(Interval::new(5, 6)),
            ]
        );
        assert!(tl[0].is_busy() && !tl[1].is_busy());
        assert_eq!(tl[1].interval(), Interval::new(3, 4));
    }

    #[test]
    fn with_inserted_does_not_mutate() {
        let s = set(&[(1, 2)]);
        let t = s.with_inserted(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn merge_at_time_zero() {
        let mut s = SegmentSet::new();
        s.insert(Interval::new(0, 0));
        s.insert(Interval::new(1, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.span(), Some(Interval::new(0, 2)));
    }

    #[test]
    fn display_lists_segments() {
        let s = set(&[(1, 2), (5, 6)]);
        assert_eq!(s.to_string(), "{[1, 2], [5, 6]}");
    }

    /// Capped gap pricing used by the delta tests: min(len, 4).
    fn price(len: u64) -> f64 {
        (len as f64).min(4.0)
    }

    /// Oracle: the gap-cost sum of a whole set under `price`.
    fn gap_sum(s: &SegmentSet) -> f64 {
        s.gaps().map(|g| price(g.len())).sum()
    }

    fn check_delta(s: &SegmentSet, interval: Interval) {
        let d = s.insertion_delta(interval, price);
        let after = s.with_inserted(interval);
        assert_eq!(
            d.busy_added,
            after.busy_time() - s.busy_time(),
            "busy_added wrong inserting {interval} into {s}"
        );
        assert!(
            (d.gap_cost_delta - (gap_sum(&after) - gap_sum(s))).abs() < 1e-9,
            "gap_cost_delta wrong inserting {interval} into {s}"
        );
        assert_eq!(d.first_segment, s.is_empty());
        assert!(after.iter().any(|seg| seg == d.merged));
    }

    #[test]
    fn insertion_delta_matches_clone_oracle() {
        let s = set(&[(10, 15), (20, 22), (30, 40), (50, 50)]);
        for (a, b) in [
            (1, 3),   // before the span: new boundary gap
            (1, 8),   // touches the first segment from the left
            (12, 14), // contained: no change
            (16, 19), // bridges two segments exactly
            (17, 18), // splits a gap in two
            (23, 29), // bridges with adjacency on both sides
            (16, 45), // absorbs three segments
            (5, 60),  // absorbs everything
            (55, 99), // after the span: new boundary gap
            (51, 51), // adjacent to the last segment
        ] {
            check_delta(&s, Interval::new(a, b));
        }
        check_delta(&SegmentSet::new(), Interval::new(3, 7));
        check_delta(&set(&[(5, 6)]), Interval::new(5, 6));
    }

    #[test]
    fn insertion_delta_does_not_mutate() {
        let s = set(&[(1, 2), (8, 9)]);
        let before = s.clone();
        let _ = s.insertion_delta(Interval::new(4, 5), price);
        assert_eq!(s, before);
    }

    #[test]
    fn insertion_delta_first_segment_flag() {
        let d = SegmentSet::new().insertion_delta(Interval::new(2, 4), price);
        assert!(d.first_segment);
        assert_eq!(d.busy_added, 3);
        assert_eq!(d.gap_cost_delta, 0.0);
        assert_eq!(d.merged, Interval::new(2, 4));
    }
}
