//! Busy/idle segment algebra.
//!
//! A server running a set of VMs "experiences a sequence of time-segments
//! alternating in running VMs (called busy-segment) and running no VM
//! (called idle-segment)" (Section III, Fig. 1). [`SegmentSet`] maintains
//! the *busy* segments as a canonical set of disjoint, non-adjacent closed
//! intervals; the interior gaps between consecutive busy segments are the
//! idle segments of the paper. Time before the first and after the last
//! busy segment is not an idle segment: the server is simply still in the
//! power-saving state (`y_{i,0} = y_{i,T+1} = 0`).

use crate::{Interval, TimeUnit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A segment of server time: either busy (≥ 1 VM) or idle (an interior
/// gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// The server hosts at least one VM throughout the interval.
    Busy(Interval),
    /// Interior gap between two busy segments: the server hosts no VM but
    /// is "booked" between activity periods.
    Idle(Interval),
}

impl Segment {
    /// The underlying interval.
    pub fn interval(&self) -> Interval {
        match *self {
            Segment::Busy(i) | Segment::Idle(i) => i,
        }
    }

    /// Whether this is a busy segment.
    pub fn is_busy(&self) -> bool {
        matches!(self, Segment::Busy(_))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Busy(i) => write!(f, "busy{i}"),
            Segment::Idle(i) => write!(f, "idle{i}"),
        }
    }
}

/// How an insertion would change a [`SegmentSet`], without performing it.
///
/// Produced by [`SegmentSet::insertion_delta`]; combined with a server's
/// power parameters this yields the exact change in segment energy cost
/// as pure arithmetic — no clone, no rescan of the resident segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionDelta<M = f64> {
    /// Increase in total busy time (`busy_time` after − before).
    pub busy_added: u64,
    /// Change in the sum of per-gap costs over interior gaps, as priced
    /// by the closure given to [`SegmentSet::insertion_delta`].
    pub gap_cost_delta: M,
    /// Whether the set was empty, i.e. this insertion creates the first
    /// busy segment (the initial switch-on).
    pub first_segment: bool,
    /// The merged segment the insertion would produce.
    pub merged: Interval,
}

/// How a removal would change a [`SegmentSet`], without performing it.
///
/// Produced by [`SegmentSet::removal_delta`] — the mirror of
/// [`InsertionDelta`] for the offline refinement layer: local-search
/// relocates/swaps and migration score "what does taking this interval
/// *off* the server save?" as pure arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovalDelta<M = f64> {
    /// Decrease in total busy time (`busy_time` before − after).
    pub busy_removed: u64,
    /// Change in the sum of per-gap costs over interior gaps (after −
    /// before), as priced by the closure given to
    /// [`SegmentSet::removal_delta`]. Usually positive (removing busy
    /// time opens or widens gaps) but can be negative when a boundary
    /// segment disappears and its gap with it.
    pub gap_cost_delta: M,
    /// Whether the removal empties the set — the last busy segment is
    /// gone and the initial switch-on charge is refunded.
    pub last_segment: bool,
}

/// Interior gap length between a segment ending at `prev_end` and the
/// next one starting at `next_start` (canonical sets guarantee
/// `next_start ≥ prev_end + 2`).
fn gap_len(prev_end: TimeUnit, next_start: TimeUnit) -> u64 {
    debug_assert!(u64::from(prev_end) + 1 < u64::from(next_start));
    u64::from(next_start) - u64::from(prev_end) - 1
}

/// Output of a gap measure usable with [`SegmentSet::insertion_delta`]
/// and [`SegmentSet::removal_delta`]. The delta walk combines per-gap
/// measure values linearly, so any type with zero / add / sub works:
/// `f64` for a priced delta, or a tuple of `f64`s to collect several
/// measures in a single walk (the ledger's cost-decomposition caches
/// ride along with the priced delta this way, at one walk per edit).
pub trait GapMeasure: Copy {
    /// The additive identity.
    const ZERO: Self;
    /// Componentwise addition.
    #[must_use]
    fn add(self, rhs: Self) -> Self;
    /// Componentwise subtraction.
    #[must_use]
    fn sub(self, rhs: Self) -> Self;
}

impl GapMeasure for f64 {
    const ZERO: Self = 0.0;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
}

impl GapMeasure for (f64, f64) {
    const ZERO: Self = (0.0, 0.0);
    fn add(self, rhs: Self) -> Self {
        (self.0 + rhs.0, self.1 + rhs.1)
    }
    fn sub(self, rhs: Self) -> Self {
        (self.0 - rhs.0, self.1 - rhs.1)
    }
}

impl GapMeasure for (f64, f64, f64) {
    const ZERO: Self = (0.0, 0.0, 0.0);
    fn add(self, rhs: Self) -> Self {
        (self.0 + rhs.0, self.1 + rhs.1, self.2 + rhs.2)
    }
    fn sub(self, rhs: Self) -> Self {
        (self.0 - rhs.0, self.1 - rhs.1, self.2 - rhs.2)
    }
}

/// A canonical set of disjoint, non-adjacent closed intervals — the busy
/// segments of one server.
///
/// Inserting an interval merges it with every interval it overlaps or
/// touches, so the set always stores the *minimal* number of segments.
/// Segments are stored in a flat start-sorted vector: lookups are binary
/// searches and insertion shifts the tail with a `memmove`, which beats a
/// node-based tree for the segment counts allocation produces (usually a
/// handful, rarely more than a few hundred).
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, SegmentSet};
/// let mut set = SegmentSet::new();
/// set.insert(Interval::new(1, 5));
/// set.insert(Interval::new(10, 12));
/// set.insert(Interval::new(6, 7)); // adjacent to [1,5] → merges
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.busy_time(), 7 + 3);
/// let gaps: Vec<_> = set.gaps().collect();
/// assert_eq!(gaps, vec![Interval::new(8, 9)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSet {
    /// `(start, end)` of each merged segment, sorted by start.
    segments: Vec<(TimeUnit, TimeUnit)>,
}

impl SegmentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of merged busy segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the set holds no segment.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total number of busy time units across all segments.
    pub fn busy_time(&self) -> u64 {
        self.segments
            .iter()
            .map(|&(s, e)| Interval::new(s, e).len())
            .sum()
    }

    /// The hull `[first_start, last_end]` of all segments, or `None` when
    /// empty.
    pub fn span(&self) -> Option<Interval> {
        let &(first, _) = self.segments.first()?;
        let &(_, last) = self.segments.last()?;
        Some(Interval::new(first, last))
    }

    /// Whether `t` falls inside a busy segment.
    pub fn contains(&self, t: TimeUnit) -> bool {
        let idx = self.segments.partition_point(|&(s, _)| s <= t);
        idx > 0 && t <= self.segments[idx - 1].1
    }

    /// Indices `[lo, hi)` of the segments `interval` overlaps or touches,
    /// and the hull they would merge into. Both bounds are binary
    /// searches; `lo == hi` means the interval lands clear of every
    /// existing segment.
    fn merge_range(&self, interval: Interval) -> (usize, usize, Interval) {
        let mut start = interval.start();
        let mut end = interval.end();
        // Ends are strictly increasing, so "ends before my start (with no
        // adjacency)" is a sorted prefix; `lo` is the first segment that
        // could reach or touch `start`.
        let lo = self
            .segments
            .partition_point(|&(_, e)| u64::from(e) + 1 < u64::from(start));
        // Starts are sorted, so "begins at or before end + 1" is also a
        // prefix; everything in [lo, hi) merges.
        let hi = self
            .segments
            .partition_point(|&(s, _)| u64::from(s) <= u64::from(end) + 1);
        if lo < hi {
            start = start.min(self.segments[lo].0);
            end = end.max(self.segments[hi - 1].1);
        }
        (lo, hi, Interval::new(start, end))
    }

    /// Inserts an interval, merging with all overlapping or adjacent
    /// segments. Returns the merged segment that now covers `interval`.
    pub fn insert(&mut self, interval: Interval) -> Interval {
        let (lo, hi, merged) = self.merge_range(interval);
        if lo == hi {
            self.segments.insert(lo, (merged.start(), merged.end()));
        } else {
            self.segments[lo] = (merged.start(), merged.end());
            self.segments.drain(lo + 1..hi);
        }
        merged
    }

    /// How inserting `interval` would change the set, with interior gaps
    /// priced by `gap_cost` (a length → cost map, e.g.
    /// `ServerSpec::gap_cost`). Probes only the merged segments and their
    /// two outside neighbours — `O(log n + merged)`, no allocation — and
    /// does not mutate the set.
    ///
    /// Together with the run cost of the inserted VM this is the exact
    /// incremental energy cost the MIEC heuristic minimises; see
    /// `ServerLedger::incremental_cost`.
    pub fn insertion_delta<M: GapMeasure>(
        &self,
        interval: Interval,
        gap_cost: impl Fn(u64) -> M,
    ) -> InsertionDelta<M> {
        let (lo, hi, merged) = self.merge_range(interval);
        let absorbed: u64 = self.segments[lo..hi]
            .iter()
            .map(|&(s, e)| Interval::new(s, e).len())
            .sum();
        let mut delta = M::ZERO;
        // Interior gaps between consecutive absorbed segments become busy.
        for w in self.segments[lo..hi].windows(2) {
            delta = delta.sub(gap_cost(gap_len(w[0].1, w[1].0)));
        }
        if lo < hi {
            // The hull may extend past the outermost absorbed segments,
            // shrinking (never closing) the boundary gaps.
            if lo > 0 {
                let left_end = self.segments[lo - 1].1;
                let old = gap_len(left_end, self.segments[lo].0);
                let new = gap_len(left_end, merged.start());
                if new != old {
                    delta = delta.add(gap_cost(new)).sub(gap_cost(old));
                }
            }
            if hi < self.segments.len() {
                let right_start = self.segments[hi].0;
                let old = gap_len(self.segments[hi - 1].1, right_start);
                let new = gap_len(merged.end(), right_start);
                if new != old {
                    delta = delta.add(gap_cost(new)).sub(gap_cost(old));
                }
            }
        } else {
            // Nothing merges: the interval splits an existing gap in two,
            // or opens a new boundary gap at the edge of the span.
            let left = lo.checked_sub(1).map(|i| self.segments[i].1);
            let right = self.segments.get(lo).map(|&(s, _)| s);
            match (left, right) {
                (Some(le), Some(rs)) => {
                    delta = delta
                        .add(gap_cost(gap_len(le, merged.start())))
                        .add(gap_cost(gap_len(merged.end(), rs)))
                        .sub(gap_cost(gap_len(le, rs)));
                }
                (Some(le), None) => delta = delta.add(gap_cost(gap_len(le, merged.start()))),
                (None, Some(rs)) => delta = delta.add(gap_cost(gap_len(merged.end(), rs))),
                (None, None) => {}
            }
        }
        InsertionDelta {
            busy_added: merged.len() - absorbed,
            gap_cost_delta: delta,
            first_segment: self.is_empty(),
            merged,
        }
    }

    /// Indices `[lo, hi)` of the segments `interval` strictly overlaps
    /// (adjacency does not count, unlike [`SegmentSet::merge_range`]).
    fn overlap_range(&self, interval: Interval) -> (usize, usize) {
        let lo = self
            .segments
            .partition_point(|&(_, e)| e < interval.start());
        let hi = self
            .segments
            .partition_point(|&(s, _)| s <= interval.end());
        (lo, hi)
    }

    /// Removes `interval` from the set (set subtraction): every busy time
    /// unit inside `interval` becomes free, splitting or trimming the
    /// segments it overlaps. `O(log n + overlapped)`.
    pub fn remove(&mut self, interval: Interval) {
        let (lo, hi) = self.overlap_range(interval);
        if lo >= hi {
            return;
        }
        let left = (self.segments[lo].0 < interval.start())
            .then(|| (self.segments[lo].0, interval.start() - 1));
        let right = (self.segments[hi - 1].1 > interval.end())
            .then(|| (interval.end() + 1, self.segments[hi - 1].1));
        match (left, right) {
            (Some(l), Some(r)) => {
                self.segments[lo] = l;
                if hi - lo >= 2 {
                    self.segments[lo + 1] = r;
                    self.segments.drain(lo + 2..hi);
                } else {
                    self.segments.insert(lo + 1, r);
                }
            }
            (Some(only), None) | (None, Some(only)) => {
                self.segments[lo] = only;
                self.segments.drain(lo + 1..hi);
            }
            (None, None) => {
                self.segments.drain(lo..hi);
            }
        }
    }

    /// How removing `interval` (set subtraction, as
    /// [`SegmentSet::remove`]) would change the set, with interior gaps
    /// priced by `gap_cost`. The exact mirror of
    /// [`SegmentSet::insertion_delta`]: probes only the overlapped
    /// segments and their two outside neighbours — `O(log n +
    /// overlapped)`, no allocation, no mutation.
    ///
    /// Together with the freed VM's run cost this is the exact
    /// decremental energy cost the local-search and migration layers
    /// maximise; see `ServerLedger::decremental_cost`.
    pub fn removal_delta<M: GapMeasure>(
        &self,
        interval: Interval,
        gap_cost: impl Fn(u64) -> M,
    ) -> RemovalDelta<M> {
        let (lo, hi) = self.overlap_range(interval);
        if lo >= hi {
            return RemovalDelta {
                busy_removed: 0,
                gap_cost_delta: M::ZERO,
                last_segment: false,
            };
        }
        let busy_removed: u64 = self.segments[lo..hi]
            .iter()
            .map(|&(s, e)| {
                Interval::new(s, e)
                    .intersection(interval)
                    .map_or(0, |i| i.len())
            })
            .sum();
        let mut delta = M::ZERO;
        // Interior gaps between consecutive overlapped segments dissolve
        // into the freed region.
        for w in self.segments[lo..hi].windows(2) {
            delta = delta.sub(gap_cost(gap_len(w[0].1, w[1].0)));
        }
        // Surviving remnants of the outermost overlapped segments.
        let left_remnant = self.segments[lo].0 < interval.start();
        let right_remnant = self.segments[hi - 1].1 > interval.end();
        let left_neighbor = lo.checked_sub(1).map(|i| self.segments[i].1);
        let right_neighbor = self.segments.get(hi).map(|&(s, _)| s);
        // The freed region becomes one interior gap iff busy time
        // survives on both sides of it (a remnant or an outside
        // neighbour); otherwise it merges into free boundary time.
        let left_end = if left_remnant {
            Some(interval.start() - 1)
        } else {
            left_neighbor
        };
        let right_start = if right_remnant {
            Some(interval.end() + 1)
        } else {
            right_neighbor
        };
        if let (Some(le), Some(rs)) = (left_end, right_start) {
            delta = delta.add(gap_cost(gap_len(le, rs)));
        }
        // Old boundary gaps next to disappearing segment edges are
        // absorbed (into the new gap above, or into boundary free time).
        if !left_remnant {
            if let Some(le) = left_neighbor {
                delta = delta.sub(gap_cost(gap_len(le, self.segments[lo].0)));
            }
        }
        if !right_remnant {
            if let Some(rs) = right_neighbor {
                delta = delta.sub(gap_cost(gap_len(self.segments[hi - 1].1, rs)));
            }
        }
        RemovalDelta {
            busy_removed,
            gap_cost_delta: delta,
            last_segment: lo == 0
                && hi == self.segments.len()
                && !left_remnant
                && !right_remnant,
        }
    }

    /// The closed time region whose busy/gap structure can change when
    /// `interval` is inserted into or removed from this set: from just
    /// after the nearest segment lying entirely left of `interval`'s
    /// merge hull to just before the nearest segment entirely right of
    /// it. Two edits whose influence regions do not overlap have exactly
    /// additive cost deltas, which is what lets a swap be scored as four
    /// independent deltas in the common case; when the set is empty on
    /// one side the region is unbounded there (the first/last-segment
    /// switch-on charge is global state).
    pub fn influence_region(&self, interval: Interval) -> Interval {
        let (lo, hi, _) = self.merge_range(interval);
        let left = lo
            .checked_sub(1)
            .map_or(TimeUnit::MIN, |i| self.segments[i].1 + 1);
        let right = self
            .segments
            .get(hi)
            .map_or(TimeUnit::MAX, |&(s, _)| s - 1);
        Interval::new(left, right)
    }

    /// Iterates over the busy segments in time order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.segments.iter().map(|&(s, e)| Interval::new(s, e))
    }

    /// Iterates over the interior idle gaps between consecutive busy
    /// segments, in time order. Leading/trailing power-saving time is not
    /// reported (see module docs).
    pub fn gaps(&self) -> impl Iterator<Item = Interval> + '_ {
        self.segments
            .windows(2)
            .map(|w| Interval::new(w[0].1 + 1, w[1].0 - 1))
    }

    /// Iterates over busy and idle segments interleaved in time order, as
    /// in Fig. 1 of the paper.
    pub fn timeline(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.len().saturating_mul(2));
        let mut prev_end: Option<TimeUnit> = None;
        for seg in self.iter() {
            if let Some(pe) = prev_end {
                out.push(Segment::Idle(Interval::new(pe + 1, seg.start() - 1)));
            }
            out.push(Segment::Busy(seg));
            prev_end = Some(seg.end());
        }
        out
    }

    /// A copy of the set with `interval` inserted. Retained as the
    /// reference oracle for [`SegmentSet::insertion_delta`]-based scoring
    /// (see the simcore property tests); the allocation hot path no
    /// longer calls it.
    pub fn with_inserted(&self, interval: Interval) -> SegmentSet {
        let mut copy = self.clone();
        copy.insert(interval);
        copy
    }

    /// A copy of the set with `interval` removed. Reference oracle for
    /// [`SegmentSet::removal_delta`]-based scoring; the refinement hot
    /// path never calls it.
    pub fn with_removed(&self, interval: Interval) -> SegmentSet {
        let mut copy = self.clone();
        copy.remove(interval);
        copy
    }
}

/// Multiset of closed intervals with per-time-unit coverage counts —
/// how many hosted VMs occupy each time unit of one server.
///
/// [`SegmentSet`] alone cannot *undo* an insertion: two VMs covering the
/// same hour merge into one busy segment, and set subtraction would free
/// time the other VM still needs. `CoverageSet` keeps the counts so that
/// removing a VM frees exactly the time units it covered *exclusively*
/// ([`CoverageSet::exclusive_runs`]), which is what
/// `ServerLedger::decremental_cost` feeds to
/// [`SegmentSet::removal_delta`].
///
/// Stored as a flat breakpoint map `(start, count)` sorted by start, the
/// same layout as `UsageProfile` but with exact integer counts, so
/// `remove` after `insert` restores the vector bit for bit.
///
/// # Example
///
/// ```
/// use esvm_simcore::{CoverageSet, Interval};
/// let mut cov = CoverageSet::new();
/// cov.insert(Interval::new(1, 10));
/// cov.insert(Interval::new(4, 6));
/// assert_eq!(cov.count_at(5), 2);
/// // Removing [1,10] would free only what it covers alone:
/// let runs: Vec<_> = cov.exclusive_runs(Interval::new(1, 10)).collect();
/// assert_eq!(runs, vec![Interval::new(1, 3), Interval::new(7, 10)]);
/// cov.remove(Interval::new(4, 6));
/// cov.remove(Interval::new(1, 10));
/// assert!(cov.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSet {
    /// `(start, count)` breakpoints: the coverage count is `count` from
    /// `start` until the next breakpoint (0 before the first). Counts of
    /// adjacent breakpoints always differ, and no leading zero-count
    /// breakpoints are kept, so the representation is canonical.
    breakpoints: Vec<(TimeUnit, u32)>,
}

impl CoverageSet {
    /// Creates an empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no time unit is covered.
    pub fn is_empty(&self) -> bool {
        self.breakpoints.is_empty()
    }

    /// Number of stored breakpoints (diagnostic).
    pub fn breakpoint_count(&self) -> usize {
        self.breakpoints.len()
    }

    /// Coverage count at time `t`.
    pub fn count_at(&self, t: TimeUnit) -> u32 {
        let idx = self.breakpoints.partition_point(|&(s, _)| s <= t);
        idx.checked_sub(1).map_or(0, |i| self.breakpoints[i].1)
    }

    /// Ensures a breakpoint exists exactly at `t`, carrying the count in
    /// force there, and returns its index.
    fn ensure_breakpoint(&mut self, t: TimeUnit) -> usize {
        let idx = self.breakpoints.partition_point(|&(s, _)| s < t);
        if self.breakpoints.get(idx).is_none_or(|&(s, _)| s != t) {
            let carried = idx.checked_sub(1).map_or(0, |i| self.breakpoints[i].1);
            self.breakpoints.insert(idx, (t, carried));
        }
        idx
    }

    /// Drops the breakpoint at index `idx` if it no longer changes the
    /// count (equal to its predecessor's count, or a leading zero).
    fn drop_if_redundant(&mut self, idx: usize) {
        if let Some(&(_, count)) = self.breakpoints.get(idx) {
            let prev = idx.checked_sub(1).map_or(0, |i| self.breakpoints[i].1);
            if count == prev {
                self.breakpoints.remove(idx);
            }
        }
    }

    /// Adds one covering interval: counts inside `interval` increase by
    /// one. `O(log n + touched)`.
    pub fn insert(&mut self, interval: Interval) {
        let lo = self.ensure_breakpoint(interval.start());
        let hi = self.ensure_breakpoint(interval.end() + 1);
        for bp in &mut self.breakpoints[lo..hi] {
            bp.1 += 1;
        }
        // An edited edge can land on its neighbour's count (e.g. raising
        // a count-1 run that follows a count-2 run): canonicalize so the
        // representation stays the unique one for these counts — which is
        // what makes `remove` a bit-for-bit inverse.
        self.drop_if_redundant(hi);
        self.drop_if_redundant(lo);
    }

    /// Removes one covering interval previously [`CoverageSet::insert`]ed:
    /// counts inside `interval` decrease by one. Exactly inverts the
    /// matching insert — the breakpoint vector is restored bit for bit.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if some time unit of `interval` is not
    /// covered.
    pub fn remove(&mut self, interval: Interval) {
        let lo = self.ensure_breakpoint(interval.start());
        let hi = self.ensure_breakpoint(interval.end() + 1);
        for bp in &mut self.breakpoints[lo..hi] {
            debug_assert!(bp.1 > 0, "removing uncovered time at {}", bp.0);
            bp.1 -= 1;
        }
        // Only the two edited edges can have become redundant: interior
        // breakpoints keep their relative differences. Higher index first
        // so the lower one stays valid.
        self.drop_if_redundant(hi);
        self.drop_if_redundant(lo);
    }

    /// Whether every time unit of `interval` is covered at least once.
    pub fn covers(&self, interval: Interval) -> bool {
        let lo = self
            .breakpoints
            .partition_point(|&(s, _)| s <= interval.start());
        if lo == 0 {
            return false;
        }
        let hi = self
            .breakpoints
            .partition_point(|&(s, _)| s <= interval.end());
        self.breakpoints[lo - 1..hi].iter().all(|&(_, c)| c > 0)
    }

    /// Maximal runs inside `interval` where the coverage count is exactly
    /// one — the time a VM with that interval occupies *exclusively*, and
    /// therefore the busy time freed when it leaves. Runs are clipped to
    /// `interval`, disjoint, and in time order. `O(log n + touched)`, no
    /// allocation.
    pub fn exclusive_runs(&self, interval: Interval) -> impl Iterator<Item = Interval> + '_ {
        let lo = self
            .breakpoints
            .partition_point(|&(s, _)| s <= interval.start())
            .saturating_sub(1);
        let mut idx = lo;
        let n = self.breakpoints.len();
        std::iter::from_fn(move || {
            while idx < n {
                let (start, count) = self.breakpoints[idx];
                if start > interval.end() {
                    return None;
                }
                let piece_end = self
                    .breakpoints
                    .get(idx + 1)
                    .map_or(TimeUnit::MAX, |&(s, _)| s - 1);
                idx += 1;
                if count != 1 {
                    continue;
                }
                let s = start.max(interval.start());
                let e = piece_end.min(interval.end());
                if s <= e {
                    return Some(Interval::new(s, e));
                }
            }
            None
        })
    }

    /// The covered time as merged busy segments (reference/diagnostic:
    /// rebuilds a [`SegmentSet`] from the counts).
    pub fn covered_segments(&self) -> SegmentSet {
        let mut set = SegmentSet::new();
        let mut run_start: Option<TimeUnit> = None;
        for (i, &(start, count)) in self.breakpoints.iter().enumerate() {
            if count > 0 && run_start.is_none() {
                run_start = Some(start);
            }
            if count == 0 {
                if let Some(s) = run_start.take() {
                    set.insert(Interval::new(s, start - 1));
                }
            }
            if count > 0 && i + 1 == self.breakpoints.len() {
                // Canonical maps end with a zero-count breakpoint, so
                // this is unreachable; kept defensive.
                set.insert(Interval::new(run_start.take().unwrap(), TimeUnit::MAX));
            }
        }
        set
    }
}

impl FromIterator<Interval> for SegmentSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = SegmentSet::new();
        for interval in iter {
            set.insert(interval);
        }
        set
    }
}

impl Extend<Interval> for SegmentSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for interval in iter {
            self.insert(interval);
        }
    }
}

impl fmt::Display for SegmentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, seg) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{seg}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(intervals: &[(u32, u32)]) -> SegmentSet {
        intervals
            .iter()
            .map(|&(s, e)| Interval::new(s, e))
            .collect()
    }

    #[test]
    fn disjoint_insertions_stay_separate() {
        let s = set(&[(1, 3), (7, 9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.busy_time(), 6);
        assert_eq!(s.span(), Some(Interval::new(1, 9)));
    }

    #[test]
    fn overlapping_insertions_merge() {
        let s = set(&[(1, 5), (3, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(Interval::new(1, 8)));
    }

    #[test]
    fn adjacent_insertions_merge() {
        let s = set(&[(1, 5), (6, 8)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 8);
    }

    #[test]
    fn insertion_bridges_multiple_segments() {
        let mut s = set(&[(1, 2), (5, 6), (9, 10)]);
        let merged = s.insert(Interval::new(3, 8));
        assert_eq!(merged, Interval::new(1, 10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insertion_contained_in_existing() {
        let mut s = set(&[(1, 10)]);
        s.insert(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.busy_time(), 10);
    }

    #[test]
    fn gaps_are_interior_only() {
        let s = set(&[(3, 5), (9, 10), (20, 25)]);
        let gaps: Vec<_> = s.gaps().collect();
        assert_eq!(gaps, vec![Interval::new(6, 8), Interval::new(11, 19)]);
    }

    #[test]
    fn empty_and_single_segment_have_no_gaps() {
        assert_eq!(SegmentSet::new().gaps().count(), 0);
        assert_eq!(set(&[(1, 9)]).gaps().count(), 0);
        assert_eq!(SegmentSet::new().span(), None);
    }

    #[test]
    fn contains_point_queries() {
        let s = set(&[(2, 4), (8, 8)]);
        assert!(s.contains(2) && s.contains(4) && s.contains(8));
        assert!(!s.contains(1) && !s.contains(5) && !s.contains(9));
    }

    #[test]
    fn timeline_alternates() {
        let s = set(&[(1, 2), (5, 6)]);
        let tl = s.timeline();
        assert_eq!(
            tl,
            vec![
                Segment::Busy(Interval::new(1, 2)),
                Segment::Idle(Interval::new(3, 4)),
                Segment::Busy(Interval::new(5, 6)),
            ]
        );
        assert!(tl[0].is_busy() && !tl[1].is_busy());
        assert_eq!(tl[1].interval(), Interval::new(3, 4));
    }

    #[test]
    fn with_inserted_does_not_mutate() {
        let s = set(&[(1, 2)]);
        let t = s.with_inserted(Interval::new(4, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn merge_at_time_zero() {
        let mut s = SegmentSet::new();
        s.insert(Interval::new(0, 0));
        s.insert(Interval::new(1, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.span(), Some(Interval::new(0, 2)));
    }

    #[test]
    fn display_lists_segments() {
        let s = set(&[(1, 2), (5, 6)]);
        assert_eq!(s.to_string(), "{[1, 2], [5, 6]}");
    }

    /// Capped gap pricing used by the delta tests: min(len, 4).
    fn price(len: u64) -> f64 {
        (len as f64).min(4.0)
    }

    /// Oracle: the gap-cost sum of a whole set under `price`.
    fn gap_sum(s: &SegmentSet) -> f64 {
        s.gaps().map(|g| price(g.len())).sum()
    }

    fn check_delta(s: &SegmentSet, interval: Interval) {
        let d = s.insertion_delta(interval, price);
        let after = s.with_inserted(interval);
        assert_eq!(
            d.busy_added,
            after.busy_time() - s.busy_time(),
            "busy_added wrong inserting {interval} into {s}"
        );
        assert!(
            (d.gap_cost_delta - (gap_sum(&after) - gap_sum(s))).abs() < 1e-9,
            "gap_cost_delta wrong inserting {interval} into {s}"
        );
        assert_eq!(d.first_segment, s.is_empty());
        assert!(after.iter().any(|seg| seg == d.merged));
    }

    #[test]
    fn insertion_delta_matches_clone_oracle() {
        let s = set(&[(10, 15), (20, 22), (30, 40), (50, 50)]);
        for (a, b) in [
            (1, 3),   // before the span: new boundary gap
            (1, 8),   // touches the first segment from the left
            (12, 14), // contained: no change
            (16, 19), // bridges two segments exactly
            (17, 18), // splits a gap in two
            (23, 29), // bridges with adjacency on both sides
            (16, 45), // absorbs three segments
            (5, 60),  // absorbs everything
            (55, 99), // after the span: new boundary gap
            (51, 51), // adjacent to the last segment
        ] {
            check_delta(&s, Interval::new(a, b));
        }
        check_delta(&SegmentSet::new(), Interval::new(3, 7));
        check_delta(&set(&[(5, 6)]), Interval::new(5, 6));
    }

    #[test]
    fn insertion_delta_does_not_mutate() {
        let s = set(&[(1, 2), (8, 9)]);
        let before = s.clone();
        let _ = s.insertion_delta(Interval::new(4, 5), price);
        assert_eq!(s, before);
    }

    #[test]
    fn insertion_delta_first_segment_flag() {
        let d = SegmentSet::new().insertion_delta(Interval::new(2, 4), price);
        assert!(d.first_segment);
        assert_eq!(d.busy_added, 3);
        assert_eq!(d.gap_cost_delta, 0.0);
        assert_eq!(d.merged, Interval::new(2, 4));
    }

    #[test]
    fn remove_splits_trims_and_clears() {
        let mut s = set(&[(1, 10)]);
        s.remove(Interval::new(4, 5));
        assert_eq!(s, set(&[(1, 3), (6, 10)]));
        s.remove(Interval::new(1, 3));
        assert_eq!(s, set(&[(6, 10)]));
        s.remove(Interval::new(9, 20));
        assert_eq!(s, set(&[(6, 8)]));
        s.remove(Interval::new(6, 8));
        assert!(s.is_empty());
        // No-ops: clear of every segment, or empty set.
        let mut t = set(&[(5, 6)]);
        t.remove(Interval::new(1, 3));
        t.remove(Interval::new(8, 9));
        assert_eq!(t, set(&[(5, 6)]));
    }

    #[test]
    fn remove_spanning_multiple_segments() {
        let mut s = set(&[(1, 4), (8, 12), (20, 25), (30, 31)]);
        s.remove(Interval::new(3, 22));
        assert_eq!(s, set(&[(1, 2), (23, 25), (30, 31)]));
    }

    fn check_removal_delta(s: &SegmentSet, interval: Interval) {
        let d = s.removal_delta(interval, price);
        let after = s.with_removed(interval);
        assert_eq!(
            d.busy_removed,
            s.busy_time() - after.busy_time(),
            "busy_removed wrong removing {interval} from {s}"
        );
        assert!(
            (d.gap_cost_delta - (gap_sum(&after) - gap_sum(s))).abs() < 1e-9,
            "gap_cost_delta wrong removing {interval} from {s}"
        );
        assert_eq!(
            d.last_segment,
            !s.is_empty() && after.is_empty(),
            "last_segment wrong removing {interval} from {s}"
        );
    }

    #[test]
    fn removal_delta_matches_clone_oracle() {
        let s = set(&[(10, 15), (20, 22), (30, 40), (50, 50)]);
        for (a, b) in [
            (1, 3),   // clear of the span: no-op
            (12, 13), // splits the first segment
            (10, 12), // trims a segment's head
            (14, 17), // trims a segment's tail
            (20, 22), // removes a whole interior segment
            (10, 15), // removes the first segment: boundary gap vanishes
            (50, 55), // removes the last segment
            (13, 35), // spans three segments, remnants both sides
            (16, 29), // covers one whole segment between two others
            (5, 60),  // removes everything
            (23, 29), // entirely inside a gap: no-op
        ] {
            check_removal_delta(&s, Interval::new(a, b));
        }
        check_removal_delta(&SegmentSet::new(), Interval::new(3, 7));
        check_removal_delta(&set(&[(5, 6)]), Interval::new(5, 6));
        check_removal_delta(&set(&[(0, 3)]), Interval::new(0, 1));
    }

    #[test]
    fn removal_delta_negates_insertion_delta_for_disjoint_interval() {
        // Inserting an interval that overlaps nothing, then removing it,
        // must be an exact round trip of both deltas.
        let s = set(&[(10, 15), (30, 40)]);
        for (a, b) in [(1, 5), (17, 25), (20, 28), (50, 60), (17, 17)] {
            let x = Interval::new(a, b);
            let ins = s.insertion_delta(x, price);
            let rem = s.with_inserted(x).removal_delta(x, price);
            assert_eq!(ins.busy_added, rem.busy_removed, "{x}");
            assert!(
                (ins.gap_cost_delta + rem.gap_cost_delta).abs() < 1e-12,
                "{x}: {} vs {}",
                ins.gap_cost_delta,
                rem.gap_cost_delta
            );
            assert_eq!(ins.first_segment, rem.last_segment, "{x}");
        }
    }

    #[test]
    fn influence_region_bounds() {
        let s = set(&[(10, 15), (30, 40)]);
        // Between the two segments, merging with neither.
        assert_eq!(
            s.influence_region(Interval::new(20, 22)),
            Interval::new(16, 29)
        );
        // Touching the first segment: region still stops at the second.
        assert_eq!(
            s.influence_region(Interval::new(12, 18)),
            Interval::new(0, 29)
        );
        // Past the last segment: unbounded right.
        assert_eq!(
            s.influence_region(Interval::new(50, 55)),
            Interval::new(41, TimeUnit::MAX)
        );
        // Empty set: everything interacts (switch-on charge is global).
        assert_eq!(
            SegmentSet::new().influence_region(Interval::new(5, 6)),
            Interval::new(0, TimeUnit::MAX)
        );
    }

    #[test]
    fn disjoint_influence_regions_have_additive_deltas() {
        let s = set(&[(10, 15), (30, 40)]);
        let remove = Interval::new(12, 13);
        let insert = Interval::new(50, 60);
        assert!(!s
            .influence_region(remove)
            .overlaps(s.influence_region(insert)));
        let sum = s.removal_delta(remove, price).gap_cost_delta
            + s.insertion_delta(insert, price).gap_cost_delta;
        let mut seq = s.clone();
        seq.remove(remove);
        let true_delta = seq.insertion_delta(insert, price).gap_cost_delta
            + s.removal_delta(remove, price).gap_cost_delta;
        assert!((sum - true_delta).abs() < 1e-12);
        // And the end state matches either order.
        seq.insert(insert);
        let mut other = s.clone();
        other.insert(insert);
        other.remove(remove);
        assert_eq!(seq, other);
    }

    #[test]
    fn coverage_counts_and_exclusive_runs() {
        let mut cov = CoverageSet::new();
        cov.insert(Interval::new(1, 10));
        cov.insert(Interval::new(4, 6));
        cov.insert(Interval::new(6, 12));
        assert_eq!(cov.count_at(0), 0);
        assert_eq!(cov.count_at(1), 1);
        assert_eq!(cov.count_at(5), 2);
        assert_eq!(cov.count_at(6), 3);
        assert_eq!(cov.count_at(11), 1);
        assert_eq!(cov.count_at(13), 0);
        assert!(cov.covers(Interval::new(1, 12)));
        assert!(!cov.covers(Interval::new(0, 3)));
        assert!(!cov.covers(Interval::new(10, 13)));
        // [4,10] is shared with the second and third VM.
        let runs: Vec<_> = cov.exclusive_runs(Interval::new(1, 10)).collect();
        assert_eq!(runs, vec![Interval::new(1, 3)]);
        // Clipping: the exclusive tail [11,12] belongs to the third VM.
        let runs: Vec<_> = cov.exclusive_runs(Interval::new(6, 12)).collect();
        assert_eq!(runs, vec![Interval::new(11, 12)]);
        assert_eq!(cov.covered_segments(), set(&[(1, 12)]));
    }

    #[test]
    fn coverage_remove_exactly_inverts_insert() {
        let mut cov = CoverageSet::new();
        cov.insert(Interval::new(5, 20));
        cov.insert(Interval::new(10, 12));
        let snapshot = cov.clone();
        cov.insert(Interval::new(8, 30));
        assert_ne!(cov, snapshot);
        cov.remove(Interval::new(8, 30));
        assert_eq!(cov, snapshot, "remove must restore the exact breakpoints");
        cov.remove(Interval::new(10, 12));
        cov.remove(Interval::new(5, 20));
        assert!(cov.is_empty());
        assert_eq!(cov.breakpoint_count(), 0);
    }
}
