//! Assignments of VMs to servers, with independent auditing.

use crate::energy::{full_cost, segment_cost, transition_count, ServerLedger};
use crate::{AllocationProblem, Error, Result, ServerId, UsageProfile, Vm, VmId};
use serde::{Deserialize, Serialize};

/// A (possibly partial) placement of the problem's VMs onto servers.
///
/// The assignment maintains a [`ServerLedger`] per server so placements
/// are validated against capacity **in every time unit** as they are made,
/// and the running total cost is available in `O(1)` per query.
///
/// Construction sites: allocation heuristics (`esvm-core`) build
/// assignments VM by VM via [`Assignment::place`]; the exact solver
/// (`esvm-ilp`) decodes its solution through
/// [`Assignment::from_placement`].
#[derive(Debug, Clone)]
pub struct Assignment<'p> {
    problem: &'p AllocationProblem,
    placement: Vec<Option<ServerId>>,
    ledgers: Vec<ServerLedger>,
}

impl<'p> Assignment<'p> {
    /// Creates an empty assignment (every server asleep, no VM placed).
    pub fn new(problem: &'p AllocationProblem) -> Self {
        Self {
            problem,
            placement: vec![None; problem.vm_count()],
            ledgers: problem
                .servers()
                .iter()
                .map(|s| ServerLedger::new(*s))
                .collect(),
        }
    }

    /// Replays a raw placement vector, validating every step.
    ///
    /// # Errors
    ///
    /// Fails like [`Assignment::place`] on the first invalid entry.
    pub fn from_placement(
        problem: &'p AllocationProblem,
        placement: &[Option<ServerId>],
    ) -> Result<Self> {
        let mut assignment = Assignment::new(problem);
        for (j, slot) in placement.iter().enumerate() {
            if let Some(server) = slot {
                assignment.place(VmId(j as u32), *server)?;
            }
        }
        Ok(assignment)
    }

    /// The problem this assignment belongs to.
    pub fn problem(&self) -> &'p AllocationProblem {
        self.problem
    }

    /// Places `vm` on `server`.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownVm`] / [`Error::UnknownServer`] for bad ids;
    /// * [`Error::AlreadyPlaced`] if the VM is already placed
    ///   (constraint (11): exactly one server per VM);
    /// * [`Error::CapacityExceeded`] if the server lacks spare CPU or
    ///   memory in any time unit of the VM's duration
    ///   (constraints (9)–(10)).
    pub fn place(&mut self, vm: VmId, server: ServerId) -> Result<()> {
        let v: &Vm = self
            .problem
            .vms()
            .get(vm.index())
            .ok_or(Error::UnknownVm(vm))?;
        if self.placement[vm.index()].is_some() {
            return Err(Error::AlreadyPlaced(vm));
        }
        let ledger = self
            .ledgers
            .get_mut(server.index())
            .ok_or(Error::UnknownServer(server))?;
        if !ledger.fits(v) {
            return Err(Error::CapacityExceeded { vm, server });
        }
        ledger.host(v);
        self.placement[vm.index()] = Some(server);
        Ok(())
    }

    /// The server hosting `vm`, if placed.
    pub fn server_of(&self, vm: VmId) -> Option<ServerId> {
        self.placement.get(vm.index()).copied().flatten()
    }

    /// The raw placement vector, indexed by VM id.
    pub fn placement(&self) -> &[Option<ServerId>] {
        &self.placement
    }

    /// Ids of VMs not yet placed.
    pub fn unplaced(&self) -> impl Iterator<Item = VmId> + '_ {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(j, _)| VmId(j as u32))
    }

    /// Whether every VM is placed.
    pub fn is_complete(&self) -> bool {
        self.placement.iter().all(Option::is_some)
    }

    /// The live ledger of one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn ledger(&self, server: ServerId) -> &ServerLedger {
        &self.ledgers[server.index()]
    }

    /// All server ledgers, indexed by server id.
    pub fn ledgers(&self) -> &[ServerLedger] {
        &self.ledgers
    }

    /// Total energy cost of the current (possibly partial) assignment, in
    /// watt·time-units: the objective of Eq. (7)/(8) under the switch-off
    /// policy.
    pub fn total_cost(&self) -> f64 {
        self.ledgers.iter().map(ServerLedger::cost).sum()
    }

    /// Independently re-derives and cross-checks the assignment, returning
    /// a full report.
    ///
    /// The audit does **not** trust the incremental ledgers: it rebuilds
    /// every server's usage profile and segment set from the placement
    /// vector, re-verifies the capacity constraints, recomputes the cost
    /// from the reference implementation ([`full_cost`]) and asserts that
    /// the incremental total agrees to within floating-point tolerance.
    ///
    /// # Errors
    ///
    /// * [`Error::Unplaced`] if some VM has no server;
    /// * [`Error::CapacityExceeded`] if the placement violates capacity
    ///   (possible only for assignments forged outside [`Assignment::place`]).
    pub fn audit(&self) -> Result<AuditReport> {
        if let Some(vm) = self.unplaced().next() {
            return Err(Error::Unplaced(vm));
        }

        let n = self.problem.server_count();
        let mut per_server_vms: Vec<Vec<Vm>> = vec![Vec::new(); n];
        for (j, slot) in self.placement.iter().enumerate() {
            let server = slot.expect("checked complete above");
            per_server_vms[server.index()].push(self.problem.vms()[j]);
        }

        let mut servers = Vec::with_capacity(n);
        let mut total = EnergyBreakdown::default();
        let mut busy_units = 0u64;
        let mut cpu_util_sum = 0.0;
        let mut mem_util_sum = 0.0;

        for (i, vms) in per_server_vms.iter().enumerate() {
            let spec = &self.problem.servers()[i];

            // Independent capacity re-verification.
            let mut usage = UsageProfile::new();
            for vm in vms {
                if !usage.fits(vm.interval(), vm.demand(), spec.capacity()) {
                    return Err(Error::CapacityExceeded {
                        vm: vm.id(),
                        server: spec.id(),
                    });
                }
                usage.add(vm.interval(), vm.demand());
            }

            let segments: crate::SegmentSet = vms.iter().map(Vm::interval).collect();
            let run: f64 = vms.iter().map(|vm| spec.run_cost(vm)).sum();
            let cost = run + segment_cost(spec, &segments);
            debug_assert!(
                (cost - full_cost(spec, vms)).abs() < 1e-6,
                "segment/full cost mismatch"
            );

            // Decompose per the ILP objective: idle power over active
            // units, α per switch-on.
            let transitions = transition_count(spec, &segments);
            let kept_on_gap_units: u64 = segments
                .gaps()
                .filter(|g| !spec.switches_off_for_gap(g.len()))
                .map(|g| g.len())
                .sum();
            let active_units = segments.busy_time() + kept_on_gap_units;
            let idle_energy = spec.idle_cost(active_units);
            let transition_energy = spec.transition_cost() * transitions as f64;
            debug_assert!(
                (run + idle_energy + transition_energy - cost).abs() < 1e-6,
                "breakdown does not sum to cost"
            );

            // Utilization: pool non-zero time units (Fig. 3 metric).
            let (units, integral) = usage.nonzero_integral();
            busy_units += units;
            cpu_util_sum += integral.cpu / spec.capacity().cpu;
            mem_util_sum += if spec.capacity().mem > 0.0 {
                integral.mem / spec.capacity().mem
            } else {
                0.0
            };

            total.run += run;
            total.idle += idle_energy;
            total.transition += transition_energy;

            servers.push(ServerReport {
                server: spec.id(),
                hosted: vms.len(),
                cost,
                busy_time: segments.busy_time(),
                active_time: active_units,
                transitions,
                breakdown: EnergyBreakdown {
                    run,
                    idle: idle_energy,
                    transition: transition_energy,
                },
            });
        }

        let total_cost = total.total();
        debug_assert!(
            (total_cost - self.total_cost()).abs() < 1e-6,
            "audit total {total_cost} disagrees with incremental total {}",
            self.total_cost()
        );

        Ok(AuditReport {
            total_cost,
            breakdown: total,
            utilization: UtilizationStats {
                busy_server_time: busy_units,
                avg_cpu: if busy_units == 0 {
                    0.0
                } else {
                    cpu_util_sum / busy_units as f64
                },
                avg_mem: if busy_units == 0 {
                    0.0
                } else {
                    mem_util_sum / busy_units as f64
                },
            },
            servers,
        })
    }
}

/// Energy decomposed per the ILP objective (Eq. 7): run + idle +
/// transition, all in watt·time-units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `Σ W_ij x_ij`: cost of running the VMs.
    pub run: f64,
    /// `Σ P_idle y_it`: cost of keeping servers in the active state.
    pub idle: f64,
    /// `Σ α (y_it − y_{i,t−1})⁺`: switch-on transition costs.
    pub transition: f64,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.run + self.idle + self.transition
    }
}

/// Audit results for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// The server.
    pub server: ServerId,
    /// Number of VMs hosted.
    pub hosted: usize,
    /// Total cost of this server (Eq. 17 + initial switch-on).
    pub cost: f64,
    /// Time units in busy segments.
    pub busy_time: u64,
    /// Time units in the active state (busy + gaps kept on).
    pub active_time: u64,
    /// Number of power-saving → active transitions.
    pub transitions: u64,
    /// Energy decomposition of `cost`.
    pub breakdown: EnergyBreakdown,
}

/// Average resource utilization across all (server, time-unit) pairs
/// where the server hosts at least one VM.
///
/// This is the metric of Figs. 3 and 8: "the average CPU utilization is
/// calculated by averaging nonzero utilization values, measuring the CPU
/// usage when the server is active."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationStats {
    /// Number of pooled (server, time-unit) samples.
    pub busy_server_time: u64,
    /// Mean CPU utilization over the pooled samples, in `[0, 1]`.
    pub avg_cpu: f64,
    /// Mean memory utilization over the pooled samples, in `[0, 1]`.
    pub avg_mem: f64,
}

/// Full audit of a complete assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Total energy in watt·time-units.
    pub total_cost: f64,
    /// Data-center-wide energy decomposition.
    pub breakdown: EnergyBreakdown,
    /// Utilization statistics (Fig. 3 metric).
    pub utilization: UtilizationStats,
    /// Per-server details, indexed by server id.
    pub servers: Vec<ServerReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, PowerModel, ProblemBuilder, Resources};

    fn problem() -> AllocationProblem {
        ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 75.0)
            .server(
                Resources::new(8.0, 16.0),
                PowerModel::new(80.0, 200.0),
                100.0,
            )
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .vm(Resources::new(3.0, 4.0), Interval::new(2, 6))
            .vm(Resources::new(1.0, 1.0), Interval::new(10, 12))
            .build()
            .unwrap()
    }

    #[test]
    fn place_and_query() {
        let p = problem();
        let mut a = Assignment::new(&p);
        assert!(!a.is_complete());
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(1)).unwrap();
        assert_eq!(a.server_of(VmId(0)), Some(ServerId(0)));
        assert_eq!(a.server_of(VmId(1)), Some(ServerId(1)));
        assert_eq!(a.unplaced().collect::<Vec<_>>(), vec![VmId(2)]);
        a.place(VmId(2), ServerId(0)).unwrap();
        assert!(a.is_complete());
    }

    #[test]
    fn rejects_double_placement() {
        let p = problem();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        assert_eq!(
            a.place(VmId(0), ServerId(1)).unwrap_err(),
            Error::AlreadyPlaced(VmId(0))
        );
    }

    #[test]
    fn rejects_capacity_violation() {
        let p = problem();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        // VM 1 needs 3 CPU on [2,6]; server 0 has 4 − 2 = 2 left on [2,4].
        assert_eq!(
            a.place(VmId(1), ServerId(0)).unwrap_err(),
            Error::CapacityExceeded {
                vm: VmId(1),
                server: ServerId(0),
            }
        );
    }

    #[test]
    fn rejects_unknown_ids() {
        let p = problem();
        let mut a = Assignment::new(&p);
        assert_eq!(
            a.place(VmId(9), ServerId(0)).unwrap_err(),
            Error::UnknownVm(VmId(9))
        );
        assert_eq!(
            a.place(VmId(0), ServerId(9)).unwrap_err(),
            Error::UnknownServer(ServerId(9))
        );
    }

    #[test]
    fn audit_requires_complete_assignment() {
        let p = problem();
        let a = Assignment::new(&p);
        assert_eq!(a.audit().unwrap_err(), Error::Unplaced(VmId(0)));
    }

    #[test]
    fn audit_matches_incremental_total() {
        let p = problem();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(1)).unwrap();
        a.place(VmId(1), ServerId(1)).unwrap();
        a.place(VmId(2), ServerId(0)).unwrap();
        let report = a.audit().unwrap();
        assert!((report.total_cost - a.total_cost()).abs() < 1e-9);
        assert!((report.breakdown.total() - report.total_cost).abs() < 1e-9);
        assert_eq!(report.servers.len(), 2);
        assert_eq!(report.servers[1].hosted, 2);
        assert_eq!(report.servers[0].transitions, 1);
    }

    #[test]
    fn from_placement_round_trips() {
        let p = problem();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(1)).unwrap();
        a.place(VmId(2), ServerId(0)).unwrap();
        let b = Assignment::from_placement(&p, a.placement()).unwrap();
        assert_eq!(a.placement(), b.placement());
        assert!((a.total_cost() - b.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn from_placement_rejects_bad_vector() {
        let p = problem();
        // Both big VMs on the small server: capacity violation.
        let placement = vec![Some(ServerId(0)), Some(ServerId(0)), Some(ServerId(0))];
        assert!(Assignment::from_placement(&p, &placement).is_err());
    }

    #[test]
    fn utilization_pools_busy_time_only() {
        let p = ProblemBuilder::new()
            .server(Resources::new(4.0, 8.0), PowerModel::new(50.0, 100.0), 75.0)
            .vm(Resources::new(2.0, 4.0), Interval::new(1, 4))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        let r = a.audit().unwrap();
        assert_eq!(r.utilization.busy_server_time, 4);
        assert!((r.utilization.avg_cpu - 0.5).abs() < 1e-12);
        assert!((r.utilization.avg_mem - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_problem_audits_to_zero() {
        let p = ProblemBuilder::new()
            .server(Resources::new(1.0, 1.0), PowerModel::new(1.0, 2.0), 0.0)
            .build()
            .unwrap();
        let a = Assignment::new(&p);
        let r = a.audit().unwrap();
        assert_eq!(r.total_cost, 0.0);
        assert_eq!(r.utilization.busy_server_time, 0);
        assert_eq!(r.utilization.avg_cpu, 0.0);
    }
}
