//! Piecewise-constant resource usage over time.
//!
//! [`UsageProfile`] tracks how much CPU and memory of one server is
//! committed at every time unit, supporting the two queries allocation
//! needs:
//!
//! * *capacity check*: does a demand fit **throughout** an interval
//!   (constraints (9)–(10) must hold in every time unit)?
//! * *peak / integral*: peak usage over an interval and the time-integral
//!   of usage (for utilization statistics, Figs. 3 and 8).
//!
//! The profile is a breakpoint map `time → usage`, where an entry at `t`
//! gives the usage from `t` (inclusive) until the next breakpoint
//! (exclusive). Before the first breakpoint the usage is zero.

use crate::resources::EPSILON;
use crate::{Interval, Resources, TimeUnit};
use serde::{Deserialize, Serialize};

/// Piecewise-constant (CPU, memory) usage over discrete time.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, Resources, UsageProfile};
/// let mut p = UsageProfile::new();
/// p.add(Interval::new(1, 10), Resources::new(2.0, 4.0));
/// p.add(Interval::new(5, 20), Resources::new(1.0, 1.0));
/// assert_eq!(p.usage_at(3), Resources::new(2.0, 4.0));
/// assert_eq!(p.usage_at(7), Resources::new(3.0, 5.0));
/// assert_eq!(p.usage_at(15), Resources::new(1.0, 1.0));
/// assert_eq!(p.peak_over(Interval::new(1, 20)), Resources::new(3.0, 5.0));
/// assert!(p.fits(Interval::new(1, 20), Resources::new(1.0, 1.0), Resources::new(4.0, 6.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    /// `(time, usage)` pairs sorted by time; each entry is in force from
    /// its time until the next entry. Flat storage keeps the frequent
    /// range scans (`fits`, `peak_over`) on contiguous memory; inserts
    /// shift the tail with a `memmove`, cheap at the breakpoint counts
    /// one server accumulates.
    breakpoints: Vec<(TimeUnit, Resources)>,
}

impl UsageProfile {
    /// Creates an empty (all-zero) profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the first breakpoint at or after `t`.
    fn lower_bound(&self, t: TimeUnit) -> usize {
        self.breakpoints.partition_point(|&(t0, _)| t0 < t)
    }

    /// Index just past the last breakpoint at or before `t`.
    fn upper_bound(&self, t: TimeUnit) -> usize {
        self.breakpoints.partition_point(|&(t0, _)| t0 <= t)
    }

    /// Usage at time unit `t`.
    pub fn usage_at(&self, t: TimeUnit) -> Resources {
        match self.upper_bound(t) {
            0 => Resources::ZERO,
            i => self.breakpoints[i - 1].1,
        }
    }

    /// Ensures a breakpoint exists exactly at `t`, carrying the value that
    /// is in force there.
    fn ensure_breakpoint(&mut self, t: TimeUnit) {
        let i = self.lower_bound(t);
        if self.breakpoints.get(i).is_none_or(|&(t0, _)| t0 != t) {
            let value = if i == 0 {
                Resources::ZERO
            } else {
                self.breakpoints[i - 1].1
            };
            self.breakpoints.insert(i, (t, value));
        }
    }

    /// Adds `demand` to every time unit of `interval`.
    pub fn add(&mut self, interval: Interval, demand: Resources) {
        self.ensure_breakpoint(interval.start());
        if let Some(after) = interval.end().checked_add(1) {
            self.ensure_breakpoint(after);
        }
        let (a, b) = (
            self.lower_bound(interval.start()),
            self.upper_bound(interval.end()),
        );
        for (_, usage) in &mut self.breakpoints[a..b] {
            *usage += demand;
        }
    }

    /// Subtracts `demand` from every time unit of `interval`; the inverse
    /// of [`UsageProfile::add`]. Usage is clamped at zero to absorb
    /// floating-point noise.
    pub fn remove(&mut self, interval: Interval, demand: Resources) {
        self.ensure_breakpoint(interval.start());
        if let Some(after) = interval.end().checked_add(1) {
            self.ensure_breakpoint(after);
        }
        let (a, b) = (
            self.lower_bound(interval.start()),
            self.upper_bound(interval.end()),
        );
        for (_, usage) in &mut self.breakpoints[a..b] {
            *usage = usage.saturating_sub(demand);
        }
    }

    /// Component-wise peak usage over `interval`.
    pub fn peak_over(&self, interval: Interval) -> Resources {
        let mut peak = self.usage_at(interval.start());
        if interval.start() < interval.end() {
            let (a, b) = (
                self.lower_bound(interval.start() + 1),
                self.upper_bound(interval.end()),
            );
            for &(_, u) in &self.breakpoints[a..b] {
                peak = peak.max(u);
            }
        }
        peak
    }

    /// Whether adding `demand` throughout `interval` keeps usage within
    /// `capacity` in **every** time unit (constraints (9)–(10)).
    pub fn fits(&self, interval: Interval, demand: Resources, capacity: Resources) -> bool {
        // Check the piece in force at interval start, then every
        // breakpoint inside the interval.
        if !(self.usage_at(interval.start()) + demand).fits_within(capacity) {
            return false;
        }
        if interval.start() == interval.end() {
            return true;
        }
        let (a, b) = (
            self.lower_bound(interval.start() + 1),
            self.upper_bound(interval.end()),
        );
        self.breakpoints[a..b]
            .iter()
            .all(|&(_, u)| (u + demand).fits_within(capacity))
    }

    /// Whether adding `demand` throughout `interval` keeps usage within
    /// `capacity` in every time unit, assuming `freed_demand` (currently
    /// part of this profile) leaves `freed_interval` first.
    ///
    /// This is the swap feasibility check ("does VM b fit here once VM a
    /// is gone?") evaluated in one pass over the breakpoints — the
    /// clone-then-`fits` probe the seed local search used, without the
    /// clone. Within a piece the binding time unit is one *outside*
    /// `freed_interval` (freeing only lowers usage), so each piece is
    /// checked at its dominant value.
    pub fn fits_replacing(
        &self,
        interval: Interval,
        demand: Resources,
        freed_interval: Interval,
        freed_demand: Resources,
        capacity: Resources,
    ) -> bool {
        let mut t = interval.start();
        let mut idx = self.upper_bound(t);
        loop {
            let usage = match idx {
                0 => Resources::ZERO,
                i => self.breakpoints[i - 1].1,
            };
            let piece_end = self
                .breakpoints
                .get(idx)
                .map_or(TimeUnit::MAX, |&(next, _)| next - 1)
                .min(interval.end());
            let freed = if freed_interval.contains(t) && freed_interval.contains(piece_end) {
                freed_demand
            } else {
                Resources::ZERO
            };
            if !(usage + demand).saturating_sub(freed).fits_within(capacity) {
                return false;
            }
            if piece_end >= interval.end() {
                return true;
            }
            t = piece_end + 1;
            idx += 1;
        }
    }

    /// Streams the maximal constant pieces `(interval, usage)` with
    /// non-zero usage, in time order, without materialising them.
    pub fn nonzero_pieces_iter(&self) -> impl Iterator<Item = (Interval, Resources)> + '_ {
        self.breakpoints
            .iter()
            .enumerate()
            .map(move |(i, &(start, usage))| {
                let end = match self.breakpoints.get(i + 1) {
                    Some(&(next, _)) => next - 1,
                    // Trailing piece: zero for every profile built via
                    // `add`, except when an interval reaches
                    // `TimeUnit::MAX` and the closing breakpoint cannot be
                    // represented.
                    None => TimeUnit::MAX,
                };
                (Interval::new(start, end), usage)
            })
            .filter(|(_, usage)| !usage.is_zero())
    }

    /// The non-zero pieces collected into a vector; thin wrapper over
    /// [`UsageProfile::nonzero_pieces_iter`] for callers that need random
    /// access.
    pub fn nonzero_pieces(&self) -> Vec<(Interval, Resources)> {
        self.nonzero_pieces_iter().collect()
    }

    /// Time-integral of usage over all non-zero pieces, together with the
    /// number of non-zero time units. Drives the utilization metric of
    /// Figs. 3 and 8 ("averaging nonzero utilization values").
    pub fn nonzero_integral(&self) -> (u64, Resources) {
        let mut units = 0u64;
        let mut integral = Resources::ZERO;
        for (interval, usage) in self.nonzero_pieces_iter() {
            units += interval.len();
            integral += usage * interval.len() as f64;
        }
        (units, integral)
    }

    /// Time-integral of **CPU** usage over the whole horizon:
    /// `Σ_t Σ_{j on this server} R^CPU_jt`. Multiplied by `P¹_i` this is
    /// the server's total run cost (Eq. 4).
    pub fn cpu_integral(&self) -> f64 {
        self.nonzero_pieces_iter()
            .map(|(interval, usage)| usage.cpu * interval.len() as f64)
            .sum()
    }

    /// Whether the profile is identically zero.
    pub fn is_zero(&self) -> bool {
        self.breakpoints.iter().all(|(_, u)| u.is_zero())
    }

    /// Drops redundant breakpoints (equal consecutive values, leading
    /// zeros). Queries are unaffected; this only compacts storage after
    /// many `add`/`remove` cycles.
    pub fn compact(&mut self) {
        let mut prev = Resources::ZERO;
        self.breakpoints.retain(|&(_, u)| {
            let redundant =
                (u.cpu - prev.cpu).abs() <= EPSILON && (u.mem - prev.mem).abs() <= EPSILON;
            if !redundant {
                prev = u;
            }
            !redundant
        });
    }

    /// Number of stored breakpoints (diagnostic).
    pub fn breakpoint_count(&self) -> usize {
        self.breakpoints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(cpu: f64, mem: f64) -> Resources {
        Resources::new(cpu, mem)
    }

    #[test]
    fn empty_profile_is_zero_everywhere() {
        let p = UsageProfile::new();
        assert_eq!(p.usage_at(0), Resources::ZERO);
        assert_eq!(p.usage_at(1000), Resources::ZERO);
        assert!(p.is_zero());
        assert!(p.fits(Interval::new(0, 9), res(5.0, 5.0), res(5.0, 5.0)));
    }

    #[test]
    fn add_creates_plateau() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(3, 7), res(2.0, 1.0));
        assert_eq!(p.usage_at(2), Resources::ZERO);
        assert_eq!(p.usage_at(3), res(2.0, 1.0));
        assert_eq!(p.usage_at(7), res(2.0, 1.0));
        assert_eq!(p.usage_at(8), Resources::ZERO);
    }

    #[test]
    fn overlapping_adds_stack() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(1, 10), res(1.0, 1.0));
        p.add(Interval::new(5, 15), res(2.0, 0.5));
        assert_eq!(p.usage_at(4), res(1.0, 1.0));
        assert_eq!(p.usage_at(5), res(3.0, 1.5));
        assert_eq!(p.usage_at(10), res(3.0, 1.5));
        assert_eq!(p.usage_at(11), res(2.0, 0.5));
        assert_eq!(p.usage_at(16), Resources::ZERO);
    }

    #[test]
    fn remove_undoes_add() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(1, 10), res(1.0, 1.0));
        p.add(Interval::new(5, 15), res(2.0, 0.5));
        p.remove(Interval::new(5, 15), res(2.0, 0.5));
        for t in 0..20 {
            let expect = if (1..=10).contains(&t) {
                res(1.0, 1.0)
            } else {
                Resources::ZERO
            };
            assert_eq!(p.usage_at(t), expect, "t={t}");
        }
    }

    #[test]
    fn fits_detects_mid_interval_violation() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(5, 6), res(3.0, 0.0));
        let cap = res(4.0, 10.0);
        // New demand of 2 CPU over [1, 10] collides at t=5..6 only.
        assert!(!p.fits(Interval::new(1, 10), res(2.0, 0.0), cap));
        assert!(p.fits(Interval::new(1, 4), res(2.0, 0.0), cap));
        assert!(p.fits(Interval::new(7, 10), res(2.0, 0.0), cap));
        assert!(p.fits(Interval::new(1, 10), res(1.0, 0.0), cap));
    }

    #[test]
    fn fits_checks_single_unit_interval() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(5, 5), res(3.0, 3.0));
        let cap = res(4.0, 4.0);
        assert!(!p.fits(Interval::new(5, 5), res(2.0, 0.0), cap));
        assert!(p.fits(Interval::new(6, 6), res(2.0, 0.0), cap));
    }

    #[test]
    fn peak_over_ranges() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(1, 3), res(1.0, 4.0));
        p.add(Interval::new(3, 5), res(2.0, 1.0));
        assert_eq!(p.peak_over(Interval::new(0, 10)), res(3.0, 5.0));
        assert_eq!(p.peak_over(Interval::new(4, 10)), res(2.0, 1.0));
        assert_eq!(p.peak_over(Interval::new(6, 10)), Resources::ZERO);
    }

    #[test]
    fn nonzero_pieces_and_integral() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(1, 2), res(1.0, 2.0));
        p.add(Interval::new(5, 5), res(4.0, 4.0));
        let pieces = p.nonzero_pieces();
        assert_eq!(
            pieces,
            vec![
                (Interval::new(1, 2), res(1.0, 2.0)),
                (Interval::new(5, 5), res(4.0, 4.0)),
            ]
        );
        let (units, integral) = p.nonzero_integral();
        assert_eq!(units, 3);
        assert_eq!(integral, res(1.0 * 2.0 + 4.0, 2.0 * 2.0 + 4.0));
        assert!((p.cpu_integral() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn compact_preserves_queries() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(1, 10), res(1.0, 1.0));
        p.add(Interval::new(11, 20), res(1.0, 1.0));
        p.add(Interval::new(3, 4), res(0.5, 0.5));
        p.remove(Interval::new(3, 4), res(0.5, 0.5));
        let before: Vec<_> = (0..25).map(|t| p.usage_at(t)).collect();
        p.compact();
        let after: Vec<_> = (0..25).map(|t| p.usage_at(t)).collect();
        assert_eq!(before, after);
        // [1,10] and [11,20] at equal usage collapse into one piece plus
        // the trailing zero.
        assert_eq!(p.breakpoint_count(), 2);
    }

    #[test]
    fn peak_over_single_unit_interval() {
        let mut p = UsageProfile::new();
        p.add(Interval::new(5, 9), res(2.0, 3.0));
        assert_eq!(p.peak_over(Interval::new(6, 6)), res(2.0, 3.0));
        assert_eq!(p.peak_over(Interval::new(4, 4)), Resources::ZERO);
    }

    #[test]
    fn add_at_max_time_does_not_overflow() {
        let mut p = UsageProfile::new();
        let t = TimeUnit::MAX;
        p.add(Interval::new(t, t), res(1.0, 1.0));
        assert_eq!(p.usage_at(t), res(1.0, 1.0));
        assert_eq!(p.usage_at(t - 1), Resources::ZERO);
    }
}
