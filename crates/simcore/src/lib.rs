//! # esvm-simcore
//!
//! Discrete-time data-center simulation substrate for the reproduction of
//! *"Energy Saving Virtual Machine Allocation in Cloud Computing"*
//! (Xie, Jia, Yang, Zhang — ICDCS Workshops 2013).
//!
//! The crate models the world of Section II of the paper:
//!
//! * time is a sequence of integer **time units** (1 unit = 1 minute in the
//!   paper's evaluation); a VM occupies a closed interval
//!   `[t_start, t_end]` of time units ([`Interval`]);
//! * every VM has a two-dimensional resource demand (CPU in EC2-style
//!   *compute units*, memory in GB) that is constant over its lifetime
//!   ([`Resources`], [`Vm`]);
//! * every server is **non-homogeneous**: its own capacity, its own affine
//!   power model `P(u) = P_idle + (P_peak − P_idle)·u` and its own
//!   transition cost `α` ([`ServerSpec`], [`PowerModel`]);
//! * a server hosting VMs experiences alternating **busy** and **idle**
//!   segments ([`SegmentSet`]); during an interior idle segment it either
//!   stays active (paying `P_idle` per unit) or switches off and back on
//!   (paying `α`), whichever is cheaper — Eq. (16) of the paper;
//! * the total energy of an allocation is audited by [`Assignment`] /
//!   [`ServerLedger`] implementing Eqs. (15)–(17) plus the initial
//!   switch-on cost implied by the ILP objective (Eq. 7 with `y_{i,0}=0`).
//!
//! The crate is deliberately free of any allocation *policy*: heuristics
//! live in `esvm-core`, the exact ILP in `esvm-ilp`, workload generation in
//! `esvm-workload`. Everything here is deterministic and pure.
//!
//! ## Example
//!
//! ```
//! use esvm_simcore::{
//!     AllocationProblem, Assignment, Interval, PowerModel, Resources, ServerSpec, Vm,
//! };
//!
//! // One server, two VMs that do not overlap in time.
//! let server = ServerSpec::new(0, Resources::new(8.0, 16.0), PowerModel::new(100.0, 200.0), 50.0);
//! let vms = vec![
//!     Vm::new(0, Resources::new(4.0, 8.0), Interval::new(1, 10)),
//!     Vm::new(1, Resources::new(2.0, 2.0), Interval::new(20, 30)),
//! ];
//! let problem = AllocationProblem::new(vec![server], vms).unwrap();
//!
//! let mut assignment = Assignment::new(&problem);
//! assignment.place(0.into(), 0.into()).unwrap();
//! assignment.place(1.into(), 0.into()).unwrap();
//!
//! let audit = assignment.audit().unwrap();
//! assert!(audit.total_cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod error;
mod problem;
mod resources;
mod schedule;
mod segments;
mod server;
mod time;
mod timeline;
mod vm;

pub mod energy;
pub mod events;
pub mod stream;

pub use assignment::{Assignment, AuditReport, EnergyBreakdown, ServerReport, UtilizationStats};
pub use energy::{LedgerCheckpoint, ServerLedger};
pub use events::{replay, PowerTrace};
pub use stream::{departure_time, event_order, VmEvent};
pub use error::{Error, Result};
pub use problem::{AllocationProblem, ProblemBuilder, ProblemStats};
pub use resources::Resources;
pub use schedule::{Piece, Schedule, ScheduleAudit};
pub use segments::{CoverageSet, GapMeasure, InsertionDelta, RemovalDelta, Segment, SegmentSet};
pub use server::{PowerModel, ServerId, ServerSpec};
pub use time::{Interval, TimeUnit, MAX_TIME};
pub use timeline::UsageProfile;
pub use vm::{Vm, VmId};
