//! Virtual machine requests.

use crate::{Interval, Resources};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a VM, its index into [`AllocationProblem::vms`].
///
/// [`AllocationProblem::vms`]: crate::AllocationProblem::vms
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct VmId(pub u32);

impl VmId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VmId {
    fn from(v: u32) -> Self {
        VmId(v)
    }
}

impl From<VmId> for u32 {
    fn from(v: VmId) -> u32 {
        v.0
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A virtual machine request: a constant resource demand over a closed
/// time interval.
///
/// The paper allows time-varying demands `R_{jt}` in the formulation but
/// evaluates with stable demands ("The resource demands of each VM is
/// stable", Section IV-B); we model the evaluated system.
///
/// # Example
///
/// ```
/// use esvm_simcore::{Interval, Resources, Vm};
/// let vm = Vm::new(7, Resources::new(2.0, 3.75), Interval::new(5, 24));
/// assert_eq!(vm.duration(), 20);
/// assert_eq!(vm.cpu_time(), 2.0 * 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    id: VmId,
    demand: Resources,
    interval: Interval,
}

impl Vm {
    /// Creates a VM request.
    pub fn new(id: impl Into<VmId>, demand: Resources, interval: Interval) -> Self {
        Self {
            id: id.into(),
            demand,
            interval,
        }
    }

    /// The VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The constant (CPU, memory) demand.
    pub fn demand(&self) -> Resources {
        self.demand
    }

    /// The closed activity interval `[t_start, t_end]`.
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// First active time unit `t^s_j`.
    pub fn start(&self) -> u32 {
        self.interval.start()
    }

    /// Last active time unit `t^e_j`.
    pub fn end(&self) -> u32 {
        self.interval.end()
    }

    /// Number of active time units.
    pub fn duration(&self) -> u64 {
        self.interval.len()
    }

    /// Total CPU·time demanded: `Σ_t R^CPU_{jt} = cpu · duration`.
    ///
    /// This is the workload factor of the run cost `W_ij` (Eq. 3): the
    /// energy to run the VM on server `i` is `P¹_i · cpu_time()`.
    pub fn cpu_time(&self) -> f64 {
        self.demand.cpu * self.duration() as f64
    }
}

impl fmt::Display for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @ {}", self.id, self.demand, self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let vm = Vm::new(3, Resources::new(1.0, 1.7), Interval::new(2, 4));
        assert_eq!(vm.id(), VmId(3));
        assert_eq!(vm.start(), 2);
        assert_eq!(vm.end(), 4);
        assert_eq!(vm.duration(), 3);
        assert_eq!(vm.demand(), Resources::new(1.0, 1.7));
    }

    #[test]
    fn cpu_time_is_demand_times_duration() {
        let vm = Vm::new(0, Resources::new(6.5, 17.1), Interval::new(10, 19));
        assert!((vm.cpu_time() - 65.0).abs() < 1e-12);
    }

    #[test]
    fn id_conversions() {
        let id: VmId = 9u32.into();
        assert_eq!(id.index(), 9);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.to_string(), "vm9");
    }

    #[test]
    fn display_mentions_everything() {
        let vm = Vm::new(1, Resources::new(1.0, 2.0), Interval::new(0, 1));
        let s = vm.to_string();
        assert!(s.contains("vm1") && s.contains("[0, 1]"), "{s}");
    }
}
