//! Two-dimensional resource vectors (CPU, memory).
//!
//! The paper restricts demands and capacities to CPU and memory
//! ("as for resource demand of VMs and capacity of servers, we only focus
//! on CPU and memory", Section I): CPU in Amazon-EC2-style *compute
//! units*, memory in GB. Both are `f64` because the EC2 catalog contains
//! fractional compute units (e.g. `m2.xlarge` = 6.5 CU).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Tolerance for capacity comparisons.
///
/// Demands are sums of catalog values; accumulated floating-point error is
/// far below this while any real capacity violation in the paper's catalogs
/// is at least 0.5 compute units / 0.1 GB.
pub(crate) const EPSILON: f64 = 1e-9;

/// A (CPU, memory) resource vector.
///
/// Used both for VM demands and for server capacities. All arithmetic is
/// component-wise; comparisons ([`Resources::fits_within`]) are
/// component-wise too, because a VM must fit in *both* dimensions
/// (constraints (9) and (10) of the paper).
///
/// # Example
///
/// ```
/// use esvm_simcore::Resources;
/// let capacity = Resources::new(8.0, 16.0);
/// let used = Resources::new(4.0, 8.0) + Resources::new(2.0, 2.0);
/// assert!(used.fits_within(capacity));
/// assert_eq!(capacity - used, Resources::new(2.0, 6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// CPU, in EC2-style compute units.
    pub cpu: f64,
    /// Memory, in GB.
    pub mem: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources { cpu: 0.0, mem: 0.0 };

    /// Creates a resource vector.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or not finite: demands and
    /// capacities are physical quantities.
    pub fn new(cpu: f64, mem: f64) -> Self {
        assert!(
            cpu.is_finite() && mem.is_finite() && cpu >= 0.0 && mem >= 0.0,
            "resources must be finite and non-negative, got cpu={cpu} mem={mem}"
        );
        Self { cpu, mem }
    }

    /// Whether `self` fits within `capacity` in both dimensions, with a
    /// small tolerance for floating-point accumulation.
    pub fn fits_within(&self, capacity: Resources) -> bool {
        self.cpu <= capacity.cpu + EPSILON && self.mem <= capacity.mem + EPSILON
    }

    /// Whether both components are (approximately) zero.
    pub fn is_zero(&self) -> bool {
        self.cpu.abs() <= EPSILON && self.mem.abs() <= EPSILON
    }

    /// Component-wise maximum.
    pub fn max(&self, other: Resources) -> Resources {
        Resources {
            cpu: self.cpu.max(other.cpu),
            mem: self.mem.max(other.mem),
        }
    }

    /// Component-wise minimum.
    pub fn min(&self, other: Resources) -> Resources {
        Resources {
            cpu: self.cpu.min(other.cpu),
            mem: self.mem.min(other.mem),
        }
    }

    /// Saturating subtraction: negative components are clamped to zero.
    /// Useful for "spare capacity" computations in the presence of
    /// floating-point noise.
    pub fn saturating_sub(&self, other: Resources) -> Resources {
        Resources {
            cpu: (self.cpu - other.cpu).max(0.0),
            mem: (self.mem - other.mem).max(0.0),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu + rhs.cpu,
            mem: self.mem + rhs.mem,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu += rhs.cpu;
        self.mem += rhs.mem;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu - rhs.cpu,
            mem: self.mem - rhs.mem,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        self.cpu -= rhs.cpu;
        self.mem -= rhs.mem;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: f64) -> Resources {
        Resources {
            cpu: self.cpu * rhs,
            mem: self.mem * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(cpu {:.2} CU, mem {:.2} GB)", self.cpu, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_componentwise() {
        let a = Resources::new(4.0, 8.0);
        let b = Resources::new(1.0, 2.0);
        assert_eq!(a + b, Resources::new(5.0, 10.0));
        assert_eq!(a - b, Resources::new(3.0, 6.0));
        assert_eq!(b * 3.0, Resources::new(3.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Resources::new(5.0, 10.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_within_requires_both_dimensions() {
        let cap = Resources::new(8.0, 16.0);
        assert!(Resources::new(8.0, 16.0).fits_within(cap));
        assert!(!Resources::new(8.1, 1.0).fits_within(cap));
        assert!(!Resources::new(1.0, 16.1).fits_within(cap));
    }

    #[test]
    fn fits_within_tolerates_float_noise() {
        let cap = Resources::new(1.0, 1.0);
        let mut used = Resources::ZERO;
        for _ in 0..10 {
            used += Resources::new(0.1, 0.1);
        }
        assert!(used.fits_within(cap));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_rejects_negative() {
        let _ = Resources::new(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_nan() {
        let _ = Resources::new(f64::NAN, 0.0);
    }

    #[test]
    fn min_max_and_saturating_sub() {
        let a = Resources::new(4.0, 1.0);
        let b = Resources::new(2.0, 3.0);
        assert_eq!(a.max(b), Resources::new(4.0, 3.0));
        assert_eq!(a.min(b), Resources::new(2.0, 1.0));
        assert_eq!(b.saturating_sub(a), Resources::new(0.0, 2.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Resources = vec![Resources::new(1.0, 2.0), Resources::new(3.0, 4.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Resources::new(4.0, 6.0));
    }

    #[test]
    fn zero_detection() {
        assert!(Resources::ZERO.is_zero());
        assert!(!Resources::new(0.1, 0.0).is_zero());
    }

    #[test]
    fn display_is_human_readable() {
        let s = Resources::new(6.5, 17.1).to_string();
        assert!(s.contains("6.50") && s.contains("17.10"), "{s}");
    }
}
