//! Discrete time: time units and closed intervals.
//!
//! The paper plans over an entire period `[1, T]` in integer time units
//! ("we consider the time unit on the minute or more fine-grained scale",
//! Section I). A VM `v_j` occupies the **closed** interval
//! `[t^s_j, t^e_j]`: both endpoints are occupied time units, so a VM with
//! `start == end` runs for exactly one unit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A discrete time unit (1 unit = 1 minute in the paper's evaluation).
///
/// Plain `u32` alias: time arithmetic is pervasive in the simulator and a
/// newtype would add friction without preventing any realistic bug class —
/// the other integral quantities in the model (ids) already have newtypes.
pub type TimeUnit = u32;

/// The last representable time unit an interval endpoint may occupy.
///
/// Several O(log n) structures key gaps and breakpoints at `end + 1`
/// (half-open edits over closed intervals), so an endpoint at
/// `u32::MAX` would wrap that arithmetic. Input layers (the trace
/// parsers, the ESVT decoder) reject endpoints beyond this bound so the
/// energy ledgers never see one.
pub const MAX_TIME: TimeUnit = u32::MAX - 1;

/// A closed interval `[start, end]` of time units, `start <= end`.
///
/// The length of the interval is `end - start + 1` time units, matching the
/// paper's segment length `(τ − t + 1)` in Eqs. (15)–(16).
///
/// # Example
///
/// ```
/// use esvm_simcore::Interval;
/// let a = Interval::new(1, 10);
/// let b = Interval::new(10, 12);
/// assert_eq!(a.len(), 10);
/// assert!(a.overlaps(b));
/// assert_eq!(a.intersection(b), Some(Interval::new(10, 10)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    start: TimeUnit,
    end: TimeUnit,
}

impl Interval {
    /// Creates the closed interval `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: TimeUnit, end: TimeUnit) -> Self {
        assert!(
            start <= end,
            "interval start {start} must not exceed end {end}"
        );
        Self { start, end }
    }

    /// Creates the closed interval `[start, end]`, returning `None` when
    /// `start > end` instead of panicking.
    pub fn checked_new(start: TimeUnit, end: TimeUnit) -> Option<Self> {
        (start <= end).then_some(Self { start, end })
    }

    /// Creates an interval from a start time and a positive length.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `start + len - 1` overflows.
    pub fn with_len(start: TimeUnit, len: u32) -> Self {
        assert!(len > 0, "interval length must be positive");
        let end = start
            .checked_add(len - 1)
            .expect("interval end overflows TimeUnit");
        Self { start, end }
    }

    /// The first occupied time unit.
    pub fn start(&self) -> TimeUnit {
        self.start
    }

    /// The last occupied time unit (inclusive).
    pub fn end(&self) -> TimeUnit {
        self.end
    }

    /// Number of occupied time units: `end - start + 1`.
    ///
    /// This is the `(τ − t + 1)` factor of Eqs. (15)–(16).
    pub fn len(&self) -> u64 {
        u64::from(self.end - self.start) + 1
    }

    /// Closed intervals are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t` lies inside the interval.
    pub fn contains(&self, t: TimeUnit) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two closed intervals share at least one time unit.
    pub fn overlaps(&self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Whether the two intervals overlap or are adjacent (their union is a
    /// single interval). `[1,3]` and `[4,6]` touch; `[1,3]` and `[5,6]`
    /// do not.
    pub fn touches(&self, other: Interval) -> bool {
        // Careful with unsigned underflow: a.end + 1 >= b.start.
        u64::from(self.end) + 1 >= u64::from(other.start)
            && u64::from(other.end) + 1 >= u64::from(self.start)
    }

    /// The overlap of the two intervals, if any.
    pub fn intersection(&self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        Interval::checked_new(start, end)
    }

    /// The smallest interval covering both; only meaningful when they touch
    /// (otherwise the hull covers time units in neither).
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Iterates over every time unit in the interval.
    pub fn iter(&self) -> impl Iterator<Item = TimeUnit> + '_ {
        self.start..=self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_counts_both_endpoints() {
        assert_eq!(Interval::new(5, 5).len(), 1);
        assert_eq!(Interval::new(1, 10).len(), 10);
    }

    #[test]
    fn with_len_matches_new() {
        assert_eq!(Interval::with_len(3, 4), Interval::new(3, 6));
        assert_eq!(Interval::with_len(0, 1), Interval::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn new_rejects_inverted() {
        let _ = Interval::new(4, 3);
    }

    #[test]
    fn checked_new_rejects_inverted() {
        assert_eq!(Interval::checked_new(4, 3), None);
        assert!(Interval::checked_new(3, 4).is_some());
    }

    #[test]
    fn overlap_is_inclusive() {
        let a = Interval::new(1, 5);
        assert!(a.overlaps(Interval::new(5, 9)));
        assert!(!a.overlaps(Interval::new(6, 9)));
        assert!(a.overlaps(Interval::new(0, 1)));
        assert!(a.overlaps(Interval::new(2, 3)));
    }

    #[test]
    fn touches_includes_adjacency() {
        let a = Interval::new(1, 3);
        assert!(a.touches(Interval::new(4, 6)));
        assert!(!a.touches(Interval::new(5, 6)));
        assert!(Interval::new(4, 6).touches(a));
        // Overlapping intervals also touch.
        assert!(a.touches(Interval::new(2, 9)));
    }

    #[test]
    fn touches_does_not_underflow_at_zero() {
        let a = Interval::new(0, 0);
        let b = Interval::new(2, 3);
        assert!(!a.touches(b));
        assert!(!b.touches(a));
        assert!(a.touches(Interval::new(1, 2)));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(1, 5);
        let b = Interval::new(4, 9);
        assert_eq!(a.intersection(b), Some(Interval::new(4, 5)));
        assert_eq!(a.hull(b), Interval::new(1, 9));
        assert_eq!(a.intersection(Interval::new(7, 9)), None);
    }

    #[test]
    fn contains_checks() {
        let a = Interval::new(2, 4);
        assert!(a.contains(2) && a.contains(3) && a.contains(4));
        assert!(!a.contains(1) && !a.contains(5));
        assert!(a.contains_interval(Interval::new(3, 4)));
        assert!(!a.contains_interval(Interval::new(3, 5)));
    }

    #[test]
    fn iter_yields_every_unit() {
        let units: Vec<_> = Interval::new(3, 6).iter().collect();
        assert_eq!(units, vec![3, 4, 5, 6]);
    }

    #[test]
    fn display_renders_closed_interval() {
        assert_eq!(Interval::new(1, 9).to_string(), "[1, 9]");
    }
}
