//! Event-driven replay of an assignment: power over time.
//!
//! The audit ([`Assignment::audit`]) integrates energy analytically from
//! segment algebra. This module recomputes the same energy a third,
//! completely different way — a discrete-event sweep over the timeline —
//! and additionally exposes what the analytic path cannot: the
//! *instantaneous* state of the data center (total power draw, number of
//! active servers, switch-on impulses) at every time unit. The equality
//! of the integrated trace and the audited total is one of the strongest
//! cross-checks in the workspace (see the property tests).
//!
//! Replay semantics per server:
//!
//! * the server is **active** during its busy segments and during the
//!   interior gaps where the switch-off policy keeps it on
//!   (`P_idle · gap ≤ α`); asleep otherwise;
//! * while active it draws `P_idle + P¹ · cpu_in_use(t)` watts (Eq. 1);
//! * each power-saving → active transition deposits an `α` energy
//!   impulse at the first time unit of the activation.

use crate::{Assignment, Interval, SegmentSet, ServerSpec, TimeUnit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One kind of sweep event, taking effect at its time unit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Server becomes active (deposits its `α` impulse).
    Activate { server: usize, alpha: f64 },
    /// Server returns to the power-saving state from this unit on.
    Deactivate { server: usize },
    /// CPU draw changes by `delta_watts` from this unit on.
    CpuDelta { delta_watts: f64 },
}

/// The instantaneous power profile of a replayed assignment.
///
/// All series are indexed by time unit over `[0, horizon]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    horizon: TimeUnit,
    /// Continuous draw (idle + dynamic) in watts per time unit.
    power: Vec<f64>,
    /// Transition energy deposited at each time unit (watt·units).
    transition_impulses: Vec<f64>,
    /// Number of active servers per time unit.
    active_servers: Vec<u32>,
}

impl PowerTrace {
    /// The planning horizon (last modelled time unit).
    pub fn horizon(&self) -> TimeUnit {
        self.horizon
    }

    /// Continuous power draw in watts at time `t` (0 beyond horizon).
    pub fn power_at(&self, t: TimeUnit) -> f64 {
        self.power.get(t as usize).copied().unwrap_or(0.0)
    }

    /// The full continuous-power series.
    pub fn power_series(&self) -> &[f64] {
        &self.power
    }

    /// Transition energy deposited at time `t`.
    pub fn transition_at(&self, t: TimeUnit) -> f64 {
        self.transition_impulses
            .get(t as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// Number of active servers at time `t`.
    pub fn active_servers_at(&self, t: TimeUnit) -> u32 {
        self.active_servers.get(t as usize).copied().unwrap_or(0)
    }

    /// The active-server-count series.
    pub fn active_series(&self) -> &[u32] {
        &self.active_servers
    }

    /// Peak continuous power draw, in watts.
    pub fn peak_power(&self) -> f64 {
        self.power.iter().copied().fold(0.0, f64::max)
    }

    /// Total energy: the time-integral of the power series plus all
    /// transition impulses. Equals [`AuditReport::total_cost`] exactly.
    ///
    /// [`AuditReport::total_cost`]: crate::AuditReport::total_cost
    pub fn total_energy(&self) -> f64 {
        self.power.iter().sum::<f64>() + self.transition_impulses.iter().sum::<f64>()
    }

    /// Mean power over the span where anything is active, in watts.
    pub fn mean_active_power(&self) -> f64 {
        let active_units = self.power.iter().filter(|&&p| p > 0.0).count();
        if active_units == 0 {
            0.0
        } else {
            self.power.iter().sum::<f64>() / active_units as f64
        }
    }
}

/// The per-server activation intervals under the switch-off policy:
/// busy segments, fused across gaps the policy keeps powered.
pub fn activation_intervals(spec: &ServerSpec, segments: &SegmentSet) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::new();
    for seg in segments.iter() {
        match out.last_mut() {
            Some(last) if {
                // Gap between `last.end()` and `seg.start()`; keep the
                // server on when idling is no dearer than a transition.
                let gap = Interval::new(last.end() + 1, seg.start() - 1);
                !spec.switches_off_for_gap(gap.len())
            } =>
            {
                *last = last.hull(seg);
            }
            _ => out.push(seg),
        }
    }
    out
}

/// Replays `assignment` as a discrete-event sweep, producing the
/// instantaneous power profile.
///
/// Works on partial assignments too (unplaced VMs simply do not appear).
pub fn replay(assignment: &Assignment<'_>) -> PowerTrace {
    let problem = assignment.problem();
    let horizon = problem.horizon();
    let n_units = horizon as usize + 1;

    // Gather events: time → list.
    let mut events: BTreeMap<TimeUnit, Vec<Event>> = BTreeMap::new();

    for (i, ledger) in assignment.ledgers().iter().enumerate() {
        let spec = ledger.spec();
        for activation in activation_intervals(spec, ledger.segments()) {
            events
                .entry(activation.start())
                .or_default()
                .push(Event::Activate {
                    server: i,
                    alpha: spec.transition_cost(),
                });
            if let Some(after) = activation.end().checked_add(1) {
                events
                    .entry(after)
                    .or_default()
                    .push(Event::Deactivate { server: i });
            }
        }
    }

    for (j, slot) in assignment.placement().iter().enumerate() {
        let Some(server) = slot else { continue };
        let vm = &problem.vms()[j];
        let spec = &problem.servers()[server.index()];
        let watts = spec.power_per_cpu_unit() * vm.demand().cpu;
        events
            .entry(vm.start())
            .or_default()
            .push(Event::CpuDelta { delta_watts: watts });
        if let Some(after) = vm.end().checked_add(1) {
            events
                .entry(after)
                .or_default()
                .push(Event::CpuDelta {
                    delta_watts: -watts,
                });
        }
    }

    // Sweep: fill `[cursor, t)` with the running state, then apply the
    // batch at `t`; the state at `t` itself is recorded by the next fill
    // (or the tail).
    let mut power = vec![0.0; n_units];
    let mut transition_impulses = vec![0.0; n_units];
    let mut active_counts = vec![0u32; n_units];

    let mut idle_watts = 0.0;
    let mut cpu_watts = 0.0;
    let mut active = 0u32;
    let mut cursor: TimeUnit = 0;

    let idle_of = |i: usize| problem.servers()[i].power().p_idle();

    for (&t, batch) in &events {
        for u in cursor..t.min(horizon + 1) {
            power[u as usize] = idle_watts + cpu_watts;
            active_counts[u as usize] = active;
        }
        cursor = t;

        for event in batch {
            match *event {
                Event::Activate { server, alpha } => {
                    idle_watts += idle_of(server);
                    active += 1;
                    if (t as usize) < n_units {
                        transition_impulses[t as usize] += alpha;
                    }
                }
                Event::Deactivate { server } => {
                    idle_watts -= idle_of(server);
                    active -= 1;
                }
                Event::CpuDelta { delta_watts } => {
                    cpu_watts += delta_watts;
                }
            }
        }
    }
    for u in cursor..=horizon {
        power[u as usize] = idle_watts + cpu_watts;
        active_counts[u as usize] = active;
    }

    PowerTrace {
        horizon,
        power,
        transition_impulses,
        active_servers: active_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PowerModel, ProblemBuilder, Resources, ServerId, VmId};

    fn res(c: f64, m: f64) -> Resources {
        Resources::new(c, m)
    }

    #[test]
    fn single_vm_trace() {
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .vm(res(2.0, 4.0), Interval::new(2, 4))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        let trace = replay(&a);

        // P¹ = 50/4 = 12.5 W/CU → VM draws 25 W on top of 50 idle.
        assert_eq!(trace.power_at(1), 0.0);
        assert_eq!(trace.power_at(2), 75.0);
        assert_eq!(trace.power_at(4), 75.0);
        assert_eq!(trace.power_at(5), 0.0);
        assert_eq!(trace.transition_at(2), 60.0);
        assert_eq!(trace.active_servers_at(3), 1);
        assert_eq!(trace.active_servers_at(5), 0);
        assert_eq!(trace.peak_power(), 75.0);
        // 3 units × 75 W + α.
        assert!((trace.total_energy() - (225.0 + 60.0)).abs() < 1e-9);
        assert!((trace.total_energy() - a.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn gap_kept_active_draws_idle_power() {
        // Gap of 2 units: idle 100 < α 300 → stay on.
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 300.0)
            .vm(res(2.0, 4.0), Interval::new(1, 2))
            .vm(res(2.0, 4.0), Interval::new(5, 6))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(0)).unwrap();
        let trace = replay(&a);
        assert_eq!(trace.power_at(3), 50.0); // idle through the gap
        assert_eq!(trace.power_at(4), 50.0);
        assert_eq!(trace.active_servers_at(3), 1);
        // One activation only.
        let impulses: f64 = (0..=6).map(|t| trace.transition_at(t)).sum();
        assert_eq!(impulses, 300.0);
        assert!((trace.total_energy() - a.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn gap_switched_off_draws_nothing() {
        // Gap of 2 units: idle 100 > α 60 → switch off, two activations.
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .vm(res(2.0, 4.0), Interval::new(1, 2))
            .vm(res(2.0, 4.0), Interval::new(5, 6))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(0)).unwrap();
        let trace = replay(&a);
        assert_eq!(trace.power_at(3), 0.0);
        assert_eq!(trace.active_servers_at(4), 0);
        assert_eq!(trace.transition_at(1), 60.0);
        assert_eq!(trace.transition_at(5), 60.0);
        assert!((trace.total_energy() - a.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn overlapping_vms_on_two_servers() {
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 10.0)
            .server(res(8.0, 16.0), PowerModel::new(80.0, 160.0), 20.0)
            .vm(res(2.0, 4.0), Interval::new(1, 5))
            .vm(res(4.0, 4.0), Interval::new(3, 8))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        a.place(VmId(1), ServerId(1)).unwrap();
        let trace = replay(&a);
        assert_eq!(trace.active_servers_at(4), 2);
        assert_eq!(trace.active_servers_at(7), 1);
        // t=4: srv0 50 + 2×12.5 = 75; srv1 80 + 4×10 = 120.
        assert!((trace.power_at(4) - 195.0).abs() < 1e-9);
        assert!((trace.total_energy() - a.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn empty_assignment_is_dark() {
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 60.0)
            .build()
            .unwrap();
        let a = Assignment::new(&p);
        let trace = replay(&a);
        assert_eq!(trace.total_energy(), 0.0);
        assert_eq!(trace.peak_power(), 0.0);
        assert_eq!(trace.mean_active_power(), 0.0);
    }

    #[test]
    fn mean_active_power_ignores_dark_time() {
        let p = ProblemBuilder::new()
            .server(res(4.0, 8.0), PowerModel::new(50.0, 100.0), 0.0)
            .vm(res(4.0, 4.0), Interval::new(10, 11))
            .build()
            .unwrap();
        let mut a = Assignment::new(&p);
        a.place(VmId(0), ServerId(0)).unwrap();
        let trace = replay(&a);
        assert!((trace.mean_active_power() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn activation_intervals_fuse_cheap_gaps() {
        let spec = crate::ServerSpec::new(
            0,
            res(4.0, 8.0),
            PowerModel::new(50.0, 100.0),
            120.0, // gaps of ≤ 2 units (≤ 100 W·u) stay on
        );
        let segments: SegmentSet = [Interval::new(1, 2), Interval::new(5, 6), Interval::new(20, 21)]
            .into_iter()
            .collect();
        let act = activation_intervals(&spec, &segments);
        assert_eq!(
            act,
            vec![Interval::new(1, 6), Interval::new(20, 21)],
            "2-unit gap fused, 13-unit gap not"
        );
    }
}
