//! Property-based tests of the simulation substrate against naive
//! reference models.

use esvm_simcore::energy::{full_cost, segment_cost};
use esvm_simcore::{
    CoverageSet, Interval, PowerModel, Resources, SegmentSet, ServerLedger, ServerSpec,
    UsageProfile, Vm,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u32..200, 0u32..30).prop_map(|(s, len)| Interval::with_len(s, len + 1))
}

fn arb_spec() -> impl Strategy<Value = ServerSpec> {
    (1u32..20, 1u32..40, 0u32..30, 1u32..40, 0u32..120).prop_map(
        |(cpu, mem, idle, dynamic, alpha)| {
            ServerSpec::new(
                0,
                Resources::new(f64::from(cpu), f64::from(mem)),
                PowerModel::new(f64::from(idle), f64::from(idle + dynamic)),
                f64::from(alpha),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SegmentSet agrees with a naive per-time-unit set model.
    #[test]
    fn segment_set_matches_naive_model(intervals in proptest::collection::vec(arb_interval(), 0..20)) {
        let mut set = SegmentSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for iv in &intervals {
            set.insert(*iv);
            model.extend(iv.iter());
        }
        // Same busy time and same membership.
        prop_assert_eq!(set.busy_time(), model.len() as u64);
        for t in 0..260u32 {
            prop_assert_eq!(set.contains(t), model.contains(&t), "t={}", t);
        }
        // Segments are disjoint, non-adjacent and sorted.
        let segs: Vec<Interval> = set.iter().collect();
        for w in segs.windows(2) {
            prop_assert!(u64::from(w[0].end()) + 1 < u64::from(w[1].start()));
        }
        // Gaps partition the span minus the busy units.
        if let Some(span) = set.span() {
            let gap_units: u64 = set.gaps().map(|g| g.len()).sum();
            prop_assert_eq!(gap_units + set.busy_time(), span.len());
        }
    }

    /// UsageProfile agrees with a naive per-time-unit accumulation.
    #[test]
    fn usage_profile_matches_naive_model(
        entries in proptest::collection::vec((arb_interval(), 1u32..8, 1u32..8), 0..15)
    ) {
        let mut profile = UsageProfile::new();
        let mut model = vec![(0.0f64, 0.0f64); 300];
        for (iv, cpu, mem) in &entries {
            let demand = Resources::new(f64::from(*cpu), f64::from(*mem));
            profile.add(*iv, demand);
            for t in iv.iter() {
                model[t as usize].0 += demand.cpu;
                model[t as usize].1 += demand.mem;
            }
        }
        for (t, &(cpu, mem)) in model.iter().enumerate() {
            let u = profile.usage_at(t as u32);
            prop_assert!((u.cpu - cpu).abs() < 1e-9, "cpu at t={}", t);
            prop_assert!((u.mem - mem).abs() < 1e-9, "mem at t={}", t);
        }
        // Non-zero integral agrees with the model.
        let (units, integral) = profile.nonzero_integral();
        let m_units = model.iter().filter(|&&(c, m)| c > 0.0 || m > 0.0).count() as u64;
        let m_cpu: f64 = model.iter().map(|&(c, _)| c).sum();
        prop_assert_eq!(units, m_units);
        prop_assert!((integral.cpu - m_cpu).abs() < 1e-6);
    }

    /// `fits` is exactly "no per-unit capacity violation".
    #[test]
    fn fits_matches_naive_check(
        entries in proptest::collection::vec((arb_interval(), 1u32..8, 1u32..8), 0..10),
        probe in (arb_interval(), 1u32..8, 1u32..8),
        cap in (8u32..24, 8u32..24),
    ) {
        let capacity = Resources::new(f64::from(cap.0), f64::from(cap.1));
        let mut profile = UsageProfile::new();
        let mut model = vec![(0.0f64, 0.0f64); 300];
        for (iv, cpu, mem) in &entries {
            let demand = Resources::new(f64::from(*cpu), f64::from(*mem));
            profile.add(*iv, demand);
            for t in iv.iter() {
                model[t as usize].0 += demand.cpu;
                model[t as usize].1 += demand.mem;
            }
        }
        let (iv, cpu, mem) = probe;
        let demand = Resources::new(f64::from(cpu), f64::from(mem));
        let expected = iv.iter().all(|t| {
            model[t as usize].0 + demand.cpu <= capacity.cpu + 1e-9
                && model[t as usize].1 + demand.mem <= capacity.mem + 1e-9
        });
        prop_assert_eq!(profile.fits(iv, demand, capacity), expected);
    }

    /// The incremental ledger always agrees with the from-scratch
    /// reference cost, and hypothetical evaluation never mutates.
    #[test]
    fn ledger_matches_reference_cost(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4), 0..12),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut hosted: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            if !ledger.fits(&vm) {
                continue;
            }
            let predicted = ledger.cost_with(&vm);
            let before = ledger.cost();
            prop_assert!(predicted >= before - 1e-9, "cost must not decrease");
            ledger.host(&vm);
            hosted.push(vm);
            prop_assert!((ledger.cost() - predicted).abs() < 1e-6);
            prop_assert!((ledger.cost() - full_cost(ledger.spec(), &hosted)).abs() < 1e-6);
        }
    }

    /// The delta-based scoring agrees with the clone-based oracle: for a
    /// ledger grown from random VMs and a random probe,
    /// `incremental_cost` equals both `reference_incremental_cost` (the
    /// seed's cost_with − cost arithmetic) and the `full_cost` difference
    /// of the hosted sets.
    #[test]
    fn incremental_cost_matches_clone_oracle(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4), 0..12),
        probe in (arb_interval(), 1u32..4, 1u32..4),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut hosted: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            if ledger.fits(&vm) {
                ledger.host(&vm);
                hosted.push(vm);
            }
        }
        let (iv, cpu, mem) = probe;
        let vm = Vm::new(99, Resources::new(f64::from(cpu), f64::from(mem)), iv);

        let fast = ledger.incremental_cost(&vm);
        let oracle = ledger.reference_incremental_cost(&vm);
        prop_assert!((fast - oracle).abs() < 1e-9, "delta {} vs oracle {}", fast, oracle);
        prop_assert!((fast - (ledger.cost_with(&vm) - ledger.cost())).abs() < 1e-6);

        let mut with_probe = hosted.clone();
        with_probe.push(vm);
        let full_delta = full_cost(ledger.spec(), &with_probe) - full_cost(ledger.spec(), &hosted);
        prop_assert!((fast - full_delta).abs() < 1e-6, "delta {} vs full-cost {}", fast, full_delta);

        // Scoring never mutates: committing afterwards lands on the
        // predicted cost, and the cached cost matches a fresh rescan.
        if ledger.fits(&vm) {
            let predicted = ledger.cost() + fast;
            ledger.host(&vm);
            prop_assert!((ledger.cost() - predicted).abs() < 1e-6);
            prop_assert!(
                (ledger.cost()
                    - (ledger.run_cost() + segment_cost(ledger.spec(), ledger.segments())))
                .abs() < 1e-6
            );
        }
    }

    /// Inserting an interval into a segment set never decreases the
    /// segment cost (more busy time can only cost more or bridge gaps at
    /// their previous price).
    #[test]
    fn segment_cost_is_monotone_under_insert(
        spec in arb_spec(),
        intervals in proptest::collection::vec(arb_interval(), 1..15),
    ) {
        let mut set = SegmentSet::new();
        let mut prev = segment_cost(&spec, &set);
        for iv in intervals {
            set.insert(iv);
            let now = segment_cost(&spec, &set);
            prop_assert!(now >= prev - 1e-9, "cost dropped from {} to {}", prev, now);
            prev = now;
        }
    }

    /// `SegmentSet::remove` agrees with a naive per-time-unit set
    /// subtraction, and canonical form is preserved.
    #[test]
    fn segment_remove_matches_naive_model(
        inserts in proptest::collection::vec(arb_interval(), 0..15),
        removes in proptest::collection::vec(arb_interval(), 0..10),
    ) {
        let mut set = SegmentSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for iv in &inserts {
            set.insert(*iv);
            model.extend(iv.iter());
        }
        for iv in &removes {
            set.remove(*iv);
            for t in iv.iter() {
                model.remove(&t);
            }
            prop_assert_eq!(set.busy_time(), model.len() as u64);
            for t in 0..260u32 {
                prop_assert_eq!(set.contains(t), model.contains(&t), "t={}", t);
            }
            // Still disjoint, non-adjacent, sorted.
            let segs: Vec<Interval> = set.iter().collect();
            for w in segs.windows(2) {
                prop_assert!(u64::from(w[0].end()) + 1 < u64::from(w[1].start()));
            }
        }
    }

    /// `removal_delta` predicts exactly what `remove` realizes: the busy
    /// time freed, the gap-cost change, and whether the set empties.
    #[test]
    fn removal_delta_matches_clone_oracle(
        inserts in proptest::collection::vec(arb_interval(), 0..15),
        probe in arb_interval(),
        alpha in 0u32..30,
    ) {
        let price = |len: u64| (len as f64).min(f64::from(alpha));
        let total_gap = |s: &SegmentSet| s.gaps().map(|g| price(g.len())).sum::<f64>();
        let mut set = SegmentSet::new();
        for iv in &inserts {
            set.insert(*iv);
        }
        let delta = set.removal_delta(probe, price);
        let mut after = set.clone();
        after.remove(probe);
        prop_assert_eq!(delta.busy_removed, set.busy_time() - after.busy_time());
        prop_assert!(
            (delta.gap_cost_delta - (total_gap(&after) - total_gap(&set))).abs() < 1e-9,
            "gap delta {} vs realized {}",
            delta.gap_cost_delta,
            total_gap(&after) - total_gap(&set)
        );
        prop_assert_eq!(delta.last_segment, !set.is_empty() && after.is_empty());
        prop_assert_eq!(after, set.with_removed(probe));
    }

    /// For an interval disjoint from the set, `remove ∘ insert` is the
    /// identity and `removal_delta` (on the grown set) exactly negates
    /// `insertion_delta` (on the original).
    #[test]
    fn removal_delta_negates_insertion_delta(
        inserts in proptest::collection::vec(arb_interval(), 0..12),
        probe in arb_interval(),
    ) {
        let price = |len: u64| (len as f64).min(10.0);
        let mut set = SegmentSet::new();
        for iv in &inserts {
            set.insert(*iv);
        }
        if probe.iter().any(|t| set.contains(t)) {
            return Ok(()); // overlap: insertion is not invertible per se
        }
        let ins = set.insertion_delta(probe, price);
        let mut grown = set.clone();
        grown.insert(probe);
        let rem = grown.removal_delta(probe, price);
        prop_assert_eq!(ins.busy_added, rem.busy_removed);
        prop_assert!(
            (ins.gap_cost_delta + rem.gap_cost_delta).abs() < 1e-9,
            "insert {} vs remove {}",
            ins.gap_cost_delta,
            rem.gap_cost_delta
        );
        prop_assert_eq!(ins.first_segment, rem.last_segment);
        grown.remove(probe);
        prop_assert_eq!(grown, set);
    }

    /// CoverageSet agrees with a naive per-time-unit counter, `remove`
    /// is the exact inverse of `insert`, and the covered segments match
    /// the naive support.
    #[test]
    fn coverage_remove_exactly_inverts_insert(
        intervals in proptest::collection::vec(arb_interval(), 1..12),
    ) {
        let mut coverage = CoverageSet::new();
        let mut counts = vec![0u32; 300];
        let mut snapshots: Vec<CoverageSet> = Vec::new();
        for iv in &intervals {
            snapshots.push(coverage.clone());
            coverage.insert(*iv);
            for t in iv.iter() {
                counts[t as usize] += 1;
            }
            for t in 0..260u32 {
                prop_assert_eq!(coverage.count_at(t), counts[t as usize], "t={}", t);
            }
            let support = coverage.covered_segments();
            for t in 0..260u32 {
                prop_assert_eq!(support.contains(t), counts[t as usize] > 0, "t={}", t);
            }
        }
        // Unwind in reverse: each remove restores the exact prior value.
        for (iv, expected) in intervals.iter().zip(snapshots.iter()).rev() {
            coverage.remove(*iv);
            prop_assert_eq!(&coverage, expected);
        }
        prop_assert_eq!(coverage.breakpoint_count(), 0);
    }

    /// `exclusive_runs` returns exactly the maximal count-1 runs of an
    /// inserted interval: the busy time only that piece is holding up.
    #[test]
    fn exclusive_runs_match_naive_counts(
        intervals in proptest::collection::vec(arb_interval(), 1..10),
    ) {
        let mut coverage = CoverageSet::new();
        let mut counts = vec![0u32; 300];
        for iv in &intervals {
            coverage.insert(*iv);
            for t in iv.iter() {
                counts[t as usize] += 1;
            }
        }
        for iv in &intervals {
            let mut exclusive: Vec<u32> =
                iv.iter().filter(|&t| counts[t as usize] == 1).collect();
            for run in coverage.exclusive_runs(*iv) {
                prop_assert!(run.start() >= iv.start() && run.end() <= iv.end());
                for t in run.iter() {
                    prop_assert_eq!(counts[t as usize], 1, "t={}", t);
                    prop_assert_eq!(exclusive.first(), Some(&t));
                    exclusive.remove(0);
                }
            }
            prop_assert!(exclusive.is_empty(), "missed units {:?}", exclusive);
        }
    }

    /// `unhost` exactly realizes `decremental_cost`, which negates
    /// `incremental_cost`; a host/unhost round trip plus a checkpoint
    /// restore returns the ledger to its previous state bit-for-bit.
    #[test]
    fn ledger_unhost_inverts_host(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4), 0..12),
        probe in (arb_interval(), 1u32..4, 1u32..4),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut hosted: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            if ledger.fits(&vm) {
                ledger.host(&vm);
                hosted.push(vm);
            }
        }
        let (iv, cpu, mem) = probe;
        let vm = Vm::new(99, Resources::new(f64::from(cpu), f64::from(mem)), iv);
        if !ledger.fits(&vm) {
            return Ok(());
        }
        let checkpoint = ledger.checkpoint();
        let before = ledger.clone();

        let inc = ledger.incremental_cost(&vm);
        ledger.host(&vm);
        let dec = ledger.decremental_cost(&vm);
        prop_assert!((inc - dec).abs() < 1e-9, "inc {} vs dec {}", inc, dec);
        let oracle = ledger.reference_decremental_cost(&vm);
        prop_assert!((dec - oracle).abs() < 1e-9, "dec {} vs oracle {}", dec, oracle);

        let realized = ledger.unhost(&vm);
        prop_assert_eq!(realized, dec, "unhost must realize its prediction");
        ledger.restore_costs(checkpoint);
        prop_assert_eq!(ledger.segments(), before.segments());
        prop_assert_eq!(ledger.cost().to_bits(), before.cost().to_bits());
        prop_assert!((ledger.cost() - full_cost(ledger.spec(), &hosted)).abs() < 1e-6);
    }

    /// The per-server energy decomposition reproduces `cost()` bit for
    /// bit across random host / unhost / checkpoint-restore sequences,
    /// and every term matches an independent rescan of the segments.
    #[test]
    fn energy_breakdown_reproduces_cost_bit_for_bit(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4, 0u32..4), 0..16),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut resident: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem, action)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            match action {
                // Mostly host; sometimes unhost a resident VM or run a
                // host/unhost probe bracketed by checkpoint-restore.
                0 | 1 => {
                    if ledger.fits(&vm) {
                        ledger.host(&vm);
                        resident.push(vm);
                    }
                }
                2 => {
                    if let Some(victim) = resident.pop() {
                        ledger.unhost(&victim);
                    }
                }
                _ => {
                    if ledger.fits(&vm) {
                        let checkpoint = ledger.checkpoint();
                        ledger.host(&vm);
                        ledger.unhost(&vm);
                        ledger.restore_costs(checkpoint);
                    }
                }
            }

            let b = ledger.energy_breakdown();
            // The headline identity, exact to the last bit.
            prop_assert_eq!(
                (b.run + b.idle + b.transition).to_bits(),
                ledger.cost().to_bits()
            );
            prop_assert_eq!(b.total().to_bits(), ledger.cost().to_bits());

            // Each term against an independent rescan of the segments.
            let segments = ledger.segments();
            let kept_on: u64 = segments
                .gaps()
                .filter(|g| !ledger.spec().switches_off_for_gap(g.len()))
                .map(|g| g.len())
                .sum();
            let off_gaps = segments
                .gaps()
                .filter(|g| ledger.spec().switches_off_for_gap(g.len()))
                .count() as u64;
            let expected_transitions =
                if segments.is_empty() { 0 } else { 1 + off_gaps };
            prop_assert_eq!(ledger.transition_count(), expected_transitions);
            prop_assert_eq!(b.run.to_bits(), ledger.run_cost().to_bits());
            prop_assert_eq!(
                b.idle.to_bits(),
                ledger.spec().idle_cost(segments.busy_time() + kept_on).to_bits()
            );
            prop_assert_eq!(
                b.transition.to_bits(),
                (ledger.spec().transition_cost() * expected_transitions as f64).to_bits()
            );
        }
    }
}
