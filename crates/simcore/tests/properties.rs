//! Property-based tests of the simulation substrate against naive
//! reference models.

use esvm_simcore::energy::{full_cost, segment_cost};
use esvm_simcore::{
    Interval, PowerModel, Resources, SegmentSet, ServerLedger, ServerSpec, UsageProfile, Vm,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u32..200, 0u32..30).prop_map(|(s, len)| Interval::with_len(s, len + 1))
}

fn arb_spec() -> impl Strategy<Value = ServerSpec> {
    (1u32..20, 1u32..40, 0u32..30, 1u32..40, 0u32..120).prop_map(
        |(cpu, mem, idle, dynamic, alpha)| {
            ServerSpec::new(
                0,
                Resources::new(f64::from(cpu), f64::from(mem)),
                PowerModel::new(f64::from(idle), f64::from(idle + dynamic)),
                f64::from(alpha),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// SegmentSet agrees with a naive per-time-unit set model.
    #[test]
    fn segment_set_matches_naive_model(intervals in proptest::collection::vec(arb_interval(), 0..20)) {
        let mut set = SegmentSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for iv in &intervals {
            set.insert(*iv);
            model.extend(iv.iter());
        }
        // Same busy time and same membership.
        prop_assert_eq!(set.busy_time(), model.len() as u64);
        for t in 0..260u32 {
            prop_assert_eq!(set.contains(t), model.contains(&t), "t={}", t);
        }
        // Segments are disjoint, non-adjacent and sorted.
        let segs: Vec<Interval> = set.iter().collect();
        for w in segs.windows(2) {
            prop_assert!(u64::from(w[0].end()) + 1 < u64::from(w[1].start()));
        }
        // Gaps partition the span minus the busy units.
        if let Some(span) = set.span() {
            let gap_units: u64 = set.gaps().map(|g| g.len()).sum();
            prop_assert_eq!(gap_units + set.busy_time(), span.len());
        }
    }

    /// UsageProfile agrees with a naive per-time-unit accumulation.
    #[test]
    fn usage_profile_matches_naive_model(
        entries in proptest::collection::vec((arb_interval(), 1u32..8, 1u32..8), 0..15)
    ) {
        let mut profile = UsageProfile::new();
        let mut model = vec![(0.0f64, 0.0f64); 300];
        for (iv, cpu, mem) in &entries {
            let demand = Resources::new(f64::from(*cpu), f64::from(*mem));
            profile.add(*iv, demand);
            for t in iv.iter() {
                model[t as usize].0 += demand.cpu;
                model[t as usize].1 += demand.mem;
            }
        }
        for (t, &(cpu, mem)) in model.iter().enumerate() {
            let u = profile.usage_at(t as u32);
            prop_assert!((u.cpu - cpu).abs() < 1e-9, "cpu at t={}", t);
            prop_assert!((u.mem - mem).abs() < 1e-9, "mem at t={}", t);
        }
        // Non-zero integral agrees with the model.
        let (units, integral) = profile.nonzero_integral();
        let m_units = model.iter().filter(|&&(c, m)| c > 0.0 || m > 0.0).count() as u64;
        let m_cpu: f64 = model.iter().map(|&(c, _)| c).sum();
        prop_assert_eq!(units, m_units);
        prop_assert!((integral.cpu - m_cpu).abs() < 1e-6);
    }

    /// `fits` is exactly "no per-unit capacity violation".
    #[test]
    fn fits_matches_naive_check(
        entries in proptest::collection::vec((arb_interval(), 1u32..8, 1u32..8), 0..10),
        probe in (arb_interval(), 1u32..8, 1u32..8),
        cap in (8u32..24, 8u32..24),
    ) {
        let capacity = Resources::new(f64::from(cap.0), f64::from(cap.1));
        let mut profile = UsageProfile::new();
        let mut model = vec![(0.0f64, 0.0f64); 300];
        for (iv, cpu, mem) in &entries {
            let demand = Resources::new(f64::from(*cpu), f64::from(*mem));
            profile.add(*iv, demand);
            for t in iv.iter() {
                model[t as usize].0 += demand.cpu;
                model[t as usize].1 += demand.mem;
            }
        }
        let (iv, cpu, mem) = probe;
        let demand = Resources::new(f64::from(cpu), f64::from(mem));
        let expected = iv.iter().all(|t| {
            model[t as usize].0 + demand.cpu <= capacity.cpu + 1e-9
                && model[t as usize].1 + demand.mem <= capacity.mem + 1e-9
        });
        prop_assert_eq!(profile.fits(iv, demand, capacity), expected);
    }

    /// The incremental ledger always agrees with the from-scratch
    /// reference cost, and hypothetical evaluation never mutates.
    #[test]
    fn ledger_matches_reference_cost(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4), 0..12),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut hosted: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            if !ledger.fits(&vm) {
                continue;
            }
            let predicted = ledger.cost_with(&vm);
            let before = ledger.cost();
            prop_assert!(predicted >= before - 1e-9, "cost must not decrease");
            ledger.host(&vm);
            hosted.push(vm);
            prop_assert!((ledger.cost() - predicted).abs() < 1e-6);
            prop_assert!((ledger.cost() - full_cost(ledger.spec(), &hosted)).abs() < 1e-6);
        }
    }

    /// The delta-based scoring agrees with the clone-based oracle: for a
    /// ledger grown from random VMs and a random probe,
    /// `incremental_cost` equals both `reference_incremental_cost` (the
    /// seed's cost_with − cost arithmetic) and the `full_cost` difference
    /// of the hosted sets.
    #[test]
    fn incremental_cost_matches_clone_oracle(
        spec in arb_spec(),
        vms in proptest::collection::vec((arb_interval(), 1u32..4, 1u32..4), 0..12),
        probe in (arb_interval(), 1u32..4, 1u32..4),
    ) {
        let mut ledger = ServerLedger::new(spec);
        let mut hosted: Vec<Vm> = Vec::new();
        for (j, (iv, cpu, mem)) in vms.into_iter().enumerate() {
            let vm = Vm::new(j as u32, Resources::new(f64::from(cpu), f64::from(mem)), iv);
            if ledger.fits(&vm) {
                ledger.host(&vm);
                hosted.push(vm);
            }
        }
        let (iv, cpu, mem) = probe;
        let vm = Vm::new(99, Resources::new(f64::from(cpu), f64::from(mem)), iv);

        let fast = ledger.incremental_cost(&vm);
        let oracle = ledger.reference_incremental_cost(&vm);
        prop_assert!((fast - oracle).abs() < 1e-9, "delta {} vs oracle {}", fast, oracle);
        prop_assert!((fast - (ledger.cost_with(&vm) - ledger.cost())).abs() < 1e-6);

        let mut with_probe = hosted.clone();
        with_probe.push(vm);
        let full_delta = full_cost(ledger.spec(), &with_probe) - full_cost(ledger.spec(), &hosted);
        prop_assert!((fast - full_delta).abs() < 1e-6, "delta {} vs full-cost {}", fast, full_delta);

        // Scoring never mutates: committing afterwards lands on the
        // predicted cost, and the cached cost matches a fresh rescan.
        if ledger.fits(&vm) {
            let predicted = ledger.cost() + fast;
            ledger.host(&vm);
            prop_assert!((ledger.cost() - predicted).abs() < 1e-6);
            prop_assert!(
                (ledger.cost()
                    - (ledger.run_cost() + segment_cost(ledger.spec(), ledger.segments())))
                .abs() < 1e-6
            );
        }
    }

    /// Inserting an interval into a segment set never decreases the
    /// segment cost (more busy time can only cost more or bridge gaps at
    /// their previous price).
    #[test]
    fn segment_cost_is_monotone_under_insert(
        spec in arb_spec(),
        intervals in proptest::collection::vec(arb_interval(), 1..15),
    ) {
        let mut set = SegmentSet::new();
        let mut prev = segment_cost(&spec, &set);
        for iv in intervals {
            set.insert(iv);
            let now = segment_cost(&spec, &set);
            prop_assert!(now >= prev - 1e-9, "cost dropped from {} to {}", prev, now);
            prev = now;
        }
    }
}
