#!/usr/bin/env bash
# Tier-1 verification: build, run the whole test suite, then regenerate
# the two machine-readable perf records (BENCH_miec.json and
# BENCH_localsearch.json) at their production scale points. The bench
# functions assert optimised-vs-reference equivalence as they run, so a
# perf regression or a scoring divergence fails this script, not just
# slows it down.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace

cargo bench -p esvm-bench --bench allocators -- miec_2000vms_500servers
cargo bench -p esvm-bench --bench local_search -- local_search_500vms_100servers

echo "tier1: OK"
